#include "interp/module.h"

#include "interp/constants.h"
#include "interp/value.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "support/strings.h"

namespace bridgecl::interp {

using lang::AddressSpace;
using lang::DeclKind;
using lang::Dialect;
using lang::Expr;
using lang::ExprKind;
using lang::FunctionDecl;
using lang::TextureRefDecl;
using lang::VarDecl;

namespace {

/// Fold a literal initializer expression (int/float literal, possibly
/// negated / parenthesized) to a Value of `target` type.
StatusOr<Value> FoldInit(const Expr& e, const lang::Type::Ptr& target) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Value::Int(static_cast<int64_t>(e.As<lang::IntLitExpr>()->value))
          .ConvertTo(target);
    case ExprKind::kFloatLit:
      return Value::Float(e.As<lang::FloatLitExpr>()->value,
                          lang::ScalarKind::kDouble)
          .ConvertTo(target);
    case ExprKind::kParen:
      return FoldInit(*e.As<lang::ParenExpr>()->inner, target);
    case ExprKind::kDeclRef: {
      // Named device constants (CLK_* sampler/fence flags).
      auto c = NamedConstantValue(e.As<lang::DeclRefExpr>()->name);
      if (!c.has_value())
        return UnimplementedError("non-constant initializer reference");
      return Value::UInt(*c).ConvertTo(target);
    }
    case ExprKind::kBinary: {
      const auto* b = e.As<lang::BinaryExpr>();
      BRIDGECL_ASSIGN_OR_RETURN(Value l, FoldInit(*b->lhs, target));
      BRIDGECL_ASSIGN_OR_RETURN(Value r, FoldInit(*b->rhs, target));
      uint64_t out = 0;
      switch (b->op) {
        case lang::BinaryOp::kOr: out = l.AsU64() | r.AsU64(); break;
        case lang::BinaryOp::kAnd: out = l.AsU64() & r.AsU64(); break;
        case lang::BinaryOp::kXor: out = l.AsU64() ^ r.AsU64(); break;
        case lang::BinaryOp::kAdd: out = l.AsU64() + r.AsU64(); break;
        case lang::BinaryOp::kSub: out = l.AsU64() - r.AsU64(); break;
        case lang::BinaryOp::kMul: out = l.AsU64() * r.AsU64(); break;
        case lang::BinaryOp::kShl: out = l.AsU64() << r.AsU64(); break;
        case lang::BinaryOp::kShr: out = l.AsU64() >> r.AsU64(); break;
        default:
          return UnimplementedError("unsupported constant initializer op");
      }
      return Value::UInt(out).ConvertTo(target);
    }
    case ExprKind::kUnary: {
      const auto* u = e.As<lang::UnaryExpr>();
      BRIDGECL_ASSIGN_OR_RETURN(Value v, FoldInit(*u->operand, target));
      if (u->op == lang::UnaryOp::kMinus) {
        if (target && target->is_float())
          return Value::Float(-v.AsF64(), target->scalar_kind());
        return Value::Int(-v.AsI64(),
                          target ? target->scalar_kind()
                                 : lang::ScalarKind::kInt);
      }
      return v;
    }
    default:
      return UnimplementedError(
          "module-scope initializers must be literal constants");
  }
}

/// Encode a variable's initializer into `dst` (zero-filled beforehand).
Status EncodeInit(const VarDecl& v, std::byte* dst, size_t size) {
  std::memset(dst, 0, size);
  if (!v.init) return OkStatus();
  const lang::Type::Ptr& t = v.type;
  if (v.init->kind == ExprKind::kInitList) {
    if (!t->is_array())
      return InvalidArgumentError("initializer list on non-array '" + v.name +
                                  "'");
    const auto* list = v.init->As<lang::InitListExpr>();
    lang::Type::Ptr elem = t->element();
    size_t esz = elem->ByteSize();
    if (list->elems.size() * esz > size)
      return InvalidArgumentError("too many initializers for '" + v.name +
                                  "'");
    for (size_t i = 0; i < list->elems.size(); ++i) {
      BRIDGECL_ASSIGN_OR_RETURN(Value val, FoldInit(*list->elems[i], elem));
      BRIDGECL_RETURN_IF_ERROR(EncodeValue(val, dst + i * esz));
    }
    return OkStatus();
  }
  BRIDGECL_ASSIGN_OR_RETURN(Value val, FoldInit(*v.init, t));
  return EncodeValue(val, dst);
}

}  // namespace

StatusOr<std::unique_ptr<Module>> Module::Compile(const std::string& source,
                                                  Dialect dialect,
                                                  DiagnosticEngine& diags) {
  lang::ParseOptions popts;
  popts.dialect = dialect;
  BRIDGECL_ASSIGN_OR_RETURN(auto tu,
                            lang::ParseTranslationUnit(source, popts, diags));
  lang::SemaOptions sopts;
  sopts.dialect = dialect;
  BRIDGECL_RETURN_IF_ERROR(lang::Analyze(*tu, sopts, diags));
  auto m = std::unique_ptr<Module>(new Module());
  m->tu_ = std::move(tu);
  m->dialect_ = dialect;
  m->source_ = source;
  return m;
}

Status Module::LoadOn(simgpu::Device& device) {
  if (loaded_device_ == &device) return OkStatus();
  loaded_device_ = &device;
  symbols_.clear();
  var_vas_.clear();

  // Pass 1: constant-region layout.
  size_t const_offset = 0;
  for (auto& d : tu_->decls) {
    if (d->kind != DeclKind::kVar) continue;
    auto* v = d->As<VarDecl>();
    if (v->quals.space != AddressSpace::kConstant) continue;
    size_t align = v->type->Alignment();
    const_offset = (const_offset + align - 1) / align * align;
    size_t size = v->type->ByteSize();
    if (const_offset + size > device.profile().constant_mem_size)
      return ResourceExhaustedError(
          StrFormat("constant memory exhausted laying out '%s' (%zu + %zu > "
                    "%zu)",
                    v->name.c_str(), const_offset, size,
                    device.profile().constant_mem_size));
    uint64_t va = device.vm().constant_base() + const_offset;
    symbols_[v->name] = Symbol{va, size, AddressSpace::kConstant};
    var_vas_[v] = va;
    const_offset += size;
  }
  device.vm().MapConstant(device.profile().constant_mem_size);

  // Pass 2: CUDA __device__ statics go to global memory.
  for (auto& d : tu_->decls) {
    if (d->kind != DeclKind::kVar) continue;
    auto* v = d->As<VarDecl>();
    if (v->quals.space != AddressSpace::kGlobal) continue;
    size_t size = v->type->ByteSize();
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t va, device.vm().AllocGlobal(size));
    symbols_[v->name] = Symbol{va, size, AddressSpace::kGlobal};
    var_vas_[v] = va;
  }

  // Pass 3: encode initializers.
  for (auto& d : tu_->decls) {
    if (d->kind != DeclKind::kVar) continue;
    auto* v = d->As<VarDecl>();
    auto it = var_vas_.find(v);
    if (it == var_vas_.end()) continue;
    size_t size = v->type->ByteSize();
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                              device.vm().Resolve(it->second, size));
    BRIDGECL_RETURN_IF_ERROR(EncodeInit(*v, p, size));
  }
  return OkStatus();
}

const FunctionDecl* Module::FindKernel(const std::string& name) const {
  const FunctionDecl* f = tu_->FindFunction(name);
  if (f != nullptr && f->quals.is_kernel && f->body) return f;
  return nullptr;
}

StatusOr<Module::Symbol> Module::FindSymbol(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end())
    return NotFoundError("no device symbol named '" + name + "'");
  return it->second;
}

uint64_t Module::VaOf(const VarDecl* v) const {
  auto it = var_vas_.find(v);
  return it == var_vas_.end() ? 0 : it->second;
}

Status Module::BindTexture(const std::string& name, uint64_t image_desc_va) {
  if (FindTextureRef(name) == nullptr)
    return NotFoundError("no texture reference named '" + name + "'");
  texture_bindings_[name] = image_desc_va;
  return OkStatus();
}

StatusOr<uint64_t> Module::TextureBinding(const std::string& name) const {
  auto it = texture_bindings_.find(name);
  if (it == texture_bindings_.end())
    return FailedPreconditionError("texture reference '" + name +
                                   "' used but not bound");
  return it->second;
}

const TextureRefDecl* Module::FindTextureRef(const std::string& name) const {
  for (auto& d : tu_->decls)
    if (d->kind == DeclKind::kTextureRef && d->name == name)
      return d->As<TextureRefDecl>();
  return nullptr;
}

void Module::SetRegisterOverride(const std::string& kernel, int regs) {
  register_overrides_[kernel] = regs;
}

int Module::RegistersFor(const FunctionDecl* kernel) const {
  auto it = register_overrides_.find(kernel->name);
  if (it != register_overrides_.end()) return it->second;
  int table = KernelRegisterTable::Instance().For(kernel->name, dialect_);
  if (table > 0) return table;
  return kernel->register_estimate;
}

KernelRegisterTable& KernelRegisterTable::Instance() {
  static KernelRegisterTable* table = new KernelRegisterTable();
  return *table;
}

void KernelRegisterTable::Set(const std::string& kernel, int opencl_regs,
                              int cuda_regs) {
  entries_[kernel] = Entry{opencl_regs, cuda_regs};
}

void KernelRegisterTable::Clear() { entries_.clear(); }

int KernelRegisterTable::For(const std::string& kernel,
                             Dialect dialect) const {
  auto it = entries_.find(kernel);
  if (it == entries_.end()) return 0;
  return dialect == Dialect::kOpenCL ? it->second.opencl_regs
                                     : it->second.cuda_regs;
}

}  // namespace bridgecl::interp
