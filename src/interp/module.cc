#include "interp/module.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>

#include "interp/constants.h"
#include "interp/value.h"
#include "lang/parser.h"
#include "lang/sema.h"
#include "support/strings.h"

namespace bridgecl::interp {

using lang::AddressSpace;
using lang::DeclKind;
using lang::Dialect;
using lang::Expr;
using lang::ExprKind;
using lang::FunctionDecl;
using lang::TextureRefDecl;
using lang::VarDecl;

namespace {

/// Fold a literal initializer expression (int/float literal, possibly
/// negated / parenthesized) to a Value of `target` type.
StatusOr<Value> FoldInit(const Expr& e, const lang::Type::Ptr& target) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Value::Int(static_cast<int64_t>(e.As<lang::IntLitExpr>()->value))
          .ConvertTo(target);
    case ExprKind::kFloatLit:
      return Value::Float(e.As<lang::FloatLitExpr>()->value,
                          lang::ScalarKind::kDouble)
          .ConvertTo(target);
    case ExprKind::kParen:
      return FoldInit(*e.As<lang::ParenExpr>()->inner, target);
    case ExprKind::kDeclRef: {
      // Named device constants (CLK_* sampler/fence flags).
      auto c = NamedConstantValue(e.As<lang::DeclRefExpr>()->name);
      if (!c.has_value())
        return UnimplementedError("non-constant initializer reference");
      return Value::UInt(*c).ConvertTo(target);
    }
    case ExprKind::kBinary: {
      const auto* b = e.As<lang::BinaryExpr>();
      BRIDGECL_ASSIGN_OR_RETURN(Value l, FoldInit(*b->lhs, target));
      BRIDGECL_ASSIGN_OR_RETURN(Value r, FoldInit(*b->rhs, target));
      uint64_t out = 0;
      switch (b->op) {
        case lang::BinaryOp::kOr: out = l.AsU64() | r.AsU64(); break;
        case lang::BinaryOp::kAnd: out = l.AsU64() & r.AsU64(); break;
        case lang::BinaryOp::kXor: out = l.AsU64() ^ r.AsU64(); break;
        case lang::BinaryOp::kAdd: out = l.AsU64() + r.AsU64(); break;
        case lang::BinaryOp::kSub: out = l.AsU64() - r.AsU64(); break;
        case lang::BinaryOp::kMul: out = l.AsU64() * r.AsU64(); break;
        case lang::BinaryOp::kShl: out = l.AsU64() << r.AsU64(); break;
        case lang::BinaryOp::kShr: out = l.AsU64() >> r.AsU64(); break;
        default:
          return UnimplementedError("unsupported constant initializer op");
      }
      return Value::UInt(out).ConvertTo(target);
    }
    case ExprKind::kUnary: {
      const auto* u = e.As<lang::UnaryExpr>();
      BRIDGECL_ASSIGN_OR_RETURN(Value v, FoldInit(*u->operand, target));
      if (u->op == lang::UnaryOp::kMinus) {
        if (target && target->is_float())
          return Value::Float(-v.AsF64(), target->scalar_kind());
        return Value::Int(-v.AsI64(),
                          target ? target->scalar_kind()
                                 : lang::ScalarKind::kInt);
      }
      return v;
    }
    default:
      return UnimplementedError(
          "module-scope initializers must be literal constants");
  }
}

/// Encode a variable's initializer into `dst` (zero-filled beforehand).
Status EncodeInit(const VarDecl& v, std::byte* dst, size_t size) {
  std::memset(dst, 0, size);
  if (!v.init) return OkStatus();
  const lang::Type::Ptr& t = v.type;
  if (v.init->kind == ExprKind::kInitList) {
    if (!t->is_array())
      return InvalidArgumentError("initializer list on non-array '" + v.name +
                                  "'");
    const auto* list = v.init->As<lang::InitListExpr>();
    lang::Type::Ptr elem = t->element();
    size_t esz = elem->ByteSize();
    if (list->elems.size() * esz > size)
      return InvalidArgumentError("too many initializers for '" + v.name +
                                  "'");
    for (size_t i = 0; i < list->elems.size(); ++i) {
      BRIDGECL_ASSIGN_OR_RETURN(Value val, FoldInit(*list->elems[i], elem));
      BRIDGECL_RETURN_IF_ERROR(EncodeValue(val, dst + i * esz));
    }
    return OkStatus();
  }
  BRIDGECL_ASSIGN_OR_RETURN(Value val, FoldInit(*v.init, t));
  return EncodeValue(val, dst);
}

// ---------------------------------------------------------------------------
// Content-hashed module cache
// ---------------------------------------------------------------------------
// Compile results keyed by FNV-1a(source, dialect, build options). Entries
// hold the analyzed TU (shared, immutable after sema) for successful
// builds, and the failure Status for unsuccessful ones — plus the exact
// diagnostic list either way, replayed into the caller's engine on a hit
// so clGetProgramBuildInfo output is byte-identical whether or not the
// front end actually ran.

struct CacheEntry {
  std::string full_key;  // composite key, guards against hash collisions
  std::shared_ptr<lang::TranslationUnit> tu;  // null for failed builds
  Status status;
  std::vector<Diagnostic> diags;
};

std::mutex g_cache_mu;
std::unordered_map<uint64_t, CacheEntry>& CacheMap() {
  static auto* map = new std::unordered_map<uint64_t, CacheEntry>();
  return *map;
}
std::atomic<uint64_t> g_cache_hits{0};
std::atomic<uint64_t> g_cache_misses{0};
std::atomic<int> g_cache_override{-1};

std::string CompositeKey(const std::string& source, Dialect dialect,
                         const std::string& build_options) {
  std::string key;
  key.reserve(source.size() + build_options.size() + 16);
  key.append(source);
  key.push_back('\0');
  key.append(lang::DialectName(dialect));
  key.push_back('\0');
  key.append(build_options);
  return key;
}

void ReplayDiags(const std::vector<Diagnostic>& stored,
                 DiagnosticEngine& diags) {
  for (const Diagnostic& d : stored) {
    switch (d.severity) {
      case DiagSeverity::kError: diags.Error(d.loc, d.message); break;
      case DiagSeverity::kWarning: diags.Warning(d.loc, d.message); break;
      case DiagSeverity::kNote: diags.Note(d.loc, d.message); break;
    }
  }
}

}  // namespace

ModuleCacheStats GetModuleCacheStats() {
  return ModuleCacheStats{g_cache_hits.load(std::memory_order_relaxed),
                          g_cache_misses.load(std::memory_order_relaxed)};
}

uint64_t ModuleCacheKey(const std::string& source, Dialect dialect,
                        const std::string& build_options) {
  // FNV-1a, 64-bit.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : CompositeKey(source, dialect, build_options)) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

bool ModuleCacheEnabled() {
  int pinned = g_cache_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return pinned != 0;
  static const bool from_env = [] {
    const char* env = std::getenv("BRIDGECL_MODULE_CACHE");
    return env == nullptr || std::string(env) != "0";
  }();
  return from_env;
}

void SetModuleCacheEnabled(int enabled) {
  g_cache_override.store(enabled < 0 ? -1 : (enabled != 0),
                         std::memory_order_relaxed);
}

std::vector<ModuleCacheEntryState> ExportModuleCache() {
  std::vector<ModuleCacheEntryState> out;
  {
    std::lock_guard<std::mutex> lock(g_cache_mu);
    for (const auto& [key, entry] : CacheMap()) {
      ModuleCacheEntryState s;
      s.key = key;
      // The composite key is source '\0' dialect-name '\0' options; split
      // it back into the Compile inputs restore re-runs.
      const std::string& fk = entry.full_key;
      size_t first = fk.find('\0');
      size_t second = fk.find('\0', first + 1);
      if (first == std::string::npos || second == std::string::npos)
        continue;  // never happens for entries Compile inserted
      s.source = fk.substr(0, first);
      s.dialect = fk.compare(first + 1, second - first - 1,
                             lang::DialectName(Dialect::kCUDA)) == 0
                      ? Dialect::kCUDA
                      : Dialect::kOpenCL;
      s.build_options = fk.substr(second + 1);
      s.ok = entry.status.ok();
      s.diags = entry.diags;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ModuleCacheEntryState& a, const ModuleCacheEntryState& b) {
              return a.key < b.key;
            });
  return out;
}

Status ImportModuleCache(const std::vector<ModuleCacheEntryState>& entries) {
  for (const ModuleCacheEntryState& e : entries) {
    DiagnosticEngine diags;
    auto m = Module::Compile(e.source, e.dialect, diags, e.build_options);
    if (m.ok() != e.ok)
      return InvalidArgumentError(StrFormat(
          "module cache entry %llx replayed with a different build outcome"
          " (image: %s, now: %s)",
          static_cast<unsigned long long>(e.key), e.ok ? "ok" : "failed",
          m.ok() ? "ok" : "failed"));
    const std::vector<Diagnostic>& now = diags.diagnostics();
    bool same = now.size() == e.diags.size();
    for (size_t i = 0; same && i < now.size(); ++i)
      same = now[i].severity == e.diags[i].severity &&
             now[i].loc.line == e.diags[i].loc.line &&
             now[i].loc.column == e.diags[i].loc.column &&
             now[i].message == e.diags[i].message;
    if (!same)
      return InvalidArgumentError(StrFormat(
          "module cache entry %llx replayed with different diagnostics than"
          " the image recorded",
          static_cast<unsigned long long>(e.key)));
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<Module>> Module::Compile(
    const std::string& source, Dialect dialect, DiagnosticEngine& diags,
    const std::string& build_options, ModuleCacheOutcome* outcome) {
  const bool cached = ModuleCacheEnabled();
  if (outcome != nullptr)
    *outcome = cached ? ModuleCacheOutcome::kMiss : ModuleCacheOutcome::kDisabled;
  const std::string full_key =
      cached ? CompositeKey(source, dialect, build_options) : std::string();
  const uint64_t key =
      cached ? ModuleCacheKey(source, dialect, build_options) : 0;

  if (cached) {
    std::lock_guard<std::mutex> lock(g_cache_mu);
    auto it = CacheMap().find(key);
    if (it != CacheMap().end() && it->second.full_key == full_key) {
      g_cache_hits.fetch_add(1, std::memory_order_relaxed);
      if (outcome != nullptr) *outcome = ModuleCacheOutcome::kHit;
      ReplayDiags(it->second.diags, diags);
      if (!it->second.status.ok()) return it->second.status;
      auto m = std::unique_ptr<Module>(new Module());
      m->tu_ = it->second.tu;
      m->dialect_ = dialect;
      m->source_ = source;
      return m;
    }
  }

  // Front end. Capture only the diagnostics this compile adds, so replay
  // reproduces them exactly regardless of what the engine already holds.
  const size_t diags_before = diags.diagnostics().size();
  Status st = OkStatus();
  std::shared_ptr<lang::TranslationUnit> tu;
  lang::ParseOptions popts;
  popts.dialect = dialect;
  auto parsed = lang::ParseTranslationUnit(source, popts, diags);
  if (!parsed.ok()) {
    st = parsed.status();
  } else {
    tu = std::shared_ptr<lang::TranslationUnit>(std::move(*parsed));
    lang::SemaOptions sopts;
    sopts.dialect = dialect;
    st = lang::Analyze(*tu, sopts, diags);
    if (!st.ok()) tu = nullptr;
  }

  if (cached) {
    CacheEntry entry;
    entry.full_key = full_key;
    entry.tu = tu;
    entry.status = st;
    entry.diags.assign(diags.diagnostics().begin() + diags_before,
                       diags.diagnostics().end());
    std::lock_guard<std::mutex> lock(g_cache_mu);
    g_cache_misses.fetch_add(1, std::memory_order_relaxed);
    auto it = CacheMap().find(key);
    // Keep the first entry on a (vanishingly unlikely) FNV collision:
    // colliding sources simply recompile every time.
    if (it == CacheMap().end()) CacheMap().emplace(key, std::move(entry));
  }

  if (!st.ok()) return st;
  auto m = std::unique_ptr<Module>(new Module());
  m->tu_ = std::move(tu);
  m->dialect_ = dialect;
  m->source_ = source;
  return m;
}

Status Module::LoadOn(simgpu::Device& device) {
  if (loaded_device_ == &device) return OkStatus();
  loaded_device_ = &device;
  symbols_.clear();
  var_vas_.clear();

  // Pass 1: constant-region layout.
  size_t const_offset = 0;
  for (auto& d : tu_->decls) {
    if (d->kind != DeclKind::kVar) continue;
    auto* v = d->As<VarDecl>();
    if (v->quals.space != AddressSpace::kConstant) continue;
    size_t align = v->type->Alignment();
    const_offset = (const_offset + align - 1) / align * align;
    size_t size = v->type->ByteSize();
    if (const_offset + size > device.profile().constant_mem_size)
      return ResourceExhaustedError(
          StrFormat("constant memory exhausted laying out '%s' (%zu + %zu > "
                    "%zu)",
                    v->name.c_str(), const_offset, size,
                    device.profile().constant_mem_size));
    uint64_t va = device.vm().constant_base() + const_offset;
    symbols_[v->name] = Symbol{va, size, AddressSpace::kConstant};
    var_vas_[v] = va;
    const_offset += size;
  }
  device.vm().MapConstant(device.profile().constant_mem_size);

  // Pass 2: CUDA __device__ statics go to global memory.
  for (auto& d : tu_->decls) {
    if (d->kind != DeclKind::kVar) continue;
    auto* v = d->As<VarDecl>();
    if (v->quals.space != AddressSpace::kGlobal) continue;
    size_t size = v->type->ByteSize();
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t va, device.vm().AllocGlobal(size));
    symbols_[v->name] = Symbol{va, size, AddressSpace::kGlobal};
    var_vas_[v] = va;
  }

  // Pass 3: encode initializers.
  for (auto& d : tu_->decls) {
    if (d->kind != DeclKind::kVar) continue;
    auto* v = d->As<VarDecl>();
    auto it = var_vas_.find(v);
    if (it == var_vas_.end()) continue;
    size_t size = v->type->ByteSize();
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                              device.vm().Resolve(it->second, size));
    BRIDGECL_RETURN_IF_ERROR(EncodeInit(*v, p, size));
  }
  return OkStatus();
}

Status Module::RestoreLayout(simgpu::Device& device,
                             const std::vector<SymbolBinding>& symbols) {
  loaded_device_ = &device;
  symbols_.clear();
  var_vas_.clear();
  for (const SymbolBinding& b : symbols) {
    symbols_[b.name] = b.symbol;
    // Re-link the evaluator's VarDecl → VA map by name; a symbol with no
    // matching declaration means the image does not belong to this source.
    bool bound = false;
    for (auto& d : tu_->decls) {
      if (d->kind != DeclKind::kVar || d->name != b.name) continue;
      var_vas_[d->As<VarDecl>()] = b.symbol.va;
      bound = true;
      break;
    }
    if (!bound)
      return InvalidArgumentError(
          "snapshot image binds symbol '" + b.name +
          "' that this module's source does not declare");
  }
  return OkStatus();
}

const FunctionDecl* Module::FindKernel(const std::string& name) const {
  const FunctionDecl* f = tu_->FindFunction(name);
  if (f != nullptr && f->quals.is_kernel && f->body) return f;
  return nullptr;
}

StatusOr<Module::Symbol> Module::FindSymbol(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end())
    return NotFoundError("no device symbol named '" + name + "'");
  return it->second;
}

uint64_t Module::VaOf(const VarDecl* v) const {
  auto it = var_vas_.find(v);
  return it == var_vas_.end() ? 0 : it->second;
}

Status Module::BindTexture(const std::string& name, uint64_t image_desc_va) {
  if (FindTextureRef(name) == nullptr)
    return NotFoundError("no texture reference named '" + name + "'");
  texture_bindings_[name] = image_desc_va;
  return OkStatus();
}

StatusOr<uint64_t> Module::TextureBinding(const std::string& name) const {
  auto it = texture_bindings_.find(name);
  if (it == texture_bindings_.end())
    return FailedPreconditionError("texture reference '" + name +
                                   "' used but not bound");
  return it->second;
}

const TextureRefDecl* Module::FindTextureRef(const std::string& name) const {
  for (auto& d : tu_->decls)
    if (d->kind == DeclKind::kTextureRef && d->name == name)
      return d->As<TextureRefDecl>();
  return nullptr;
}

void Module::SetRegisterOverride(const std::string& kernel, int regs) {
  register_overrides_[kernel] = regs;
}

int Module::RegistersFor(const FunctionDecl* kernel) const {
  auto it = register_overrides_.find(kernel->name);
  if (it != register_overrides_.end()) return it->second;
  int table = KernelRegisterTable::Instance().For(kernel->name, dialect_);
  if (table > 0) return table;
  return kernel->register_estimate;
}

KernelRegisterTable& KernelRegisterTable::Instance() {
  static KernelRegisterTable* table = new KernelRegisterTable();
  return *table;
}

void KernelRegisterTable::Set(const std::string& kernel, int opencl_regs,
                              int cuda_regs) {
  entries_[kernel] = Entry{opencl_regs, cuda_regs};
}

void KernelRegisterTable::Clear() { entries_.clear(); }

int KernelRegisterTable::For(const std::string& kernel,
                             Dialect dialect) const {
  auto it = entries_.find(kernel);
  if (it == entries_.end()) return 0;
  return dialect == Dialect::kOpenCL ? it->second.opencl_regs
                                     : it->second.cuda_regs;
}

}  // namespace bridgecl::interp
