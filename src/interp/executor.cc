#include "interp/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "interp/constants.h"
#include "interp/image.h"
#include "interp/value.h"
#include "interp/worker_pool.h"
#include "lang/builtins.h"
#include "lang/sema.h"
#include "simgpu/fiber.h"
#include "support/strings.h"

namespace bridgecl::interp {

using lang::AddressSpace;
using lang::ArithmeticResultType;
using lang::AssignExpr;
using lang::BinaryExpr;
using lang::BinaryOp;
using lang::CallExpr;
using lang::CastExpr;
using lang::CompoundStmt;
using lang::ConditionalExpr;
using lang::DeclRefExpr;
using lang::DeclStmt;
using lang::Dialect;
using lang::Expr;
using lang::ExprKind;
using lang::ExprStmt;
using lang::FloatLitExpr;
using lang::ForStmt;
using lang::FunctionDecl;
using lang::IfStmt;
using lang::IndexExpr;
using lang::InitListExpr;
using lang::IntLitExpr;
using lang::IsFloatScalar;
using lang::IsSignedScalar;
using lang::MemberExpr;
using lang::ParenExpr;
using lang::ReturnStmt;
using lang::ScalarKind;
using lang::SizeofExpr;
using lang::Stmt;
using lang::StmtKind;
using lang::Type;
using lang::UnaryExpr;
using lang::UnaryOp;
using lang::VarDecl;
using lang::VectorLitExpr;
using lang::WhileStmt;
using simgpu::Dim3;
using simgpu::Segment;

namespace {

constexpr size_t kPrivateBytesPerItem = 64 * 1024;
constexpr size_t kFiberStackBytes = 256 * 1024;
constexpr int kMaxCallDepth = 64;

/// Location of an assignable value.
struct LV {
  enum class Kind { kMem, kReg };
  Kind kind = Kind::kReg;
  uint64_t va = 0;      // kMem
  Value* reg = nullptr; // kReg
  Type::Ptr type;       // type stored at the location (pre-swizzle)
  std::vector<int> swizzle;  // component selection on a vector location
};

enum class FlowKind { kNormal, kReturn, kBreak, kContinue };

/// State shared by all work-items of one launch. The block-parallel
/// engine copies this once per worker (rebasing the shared/private VAs to
/// the worker's VM slot) and then points `stats` at a fresh per-block
/// accumulator before each block, so workers never touch the device's
/// shared counters during execution.
struct LaunchState {
  simgpu::Device* device = nullptr;
  Module* module = nullptr;
  const FunctionDecl* kernel = nullptr;
  LaunchConfig cfg;
  Dialect dialect = Dialect::kOpenCL;

  std::unordered_map<const VarDecl*, uint64_t> shared_va;  // static __local
  uint64_t dynamic_shared_va = 0;  // CUDA extern __shared__ area
  size_t shared_total = 0;
  std::vector<Value> arg_values;   // decoded per param (dyn-local → pointer)
  std::vector<size_t> local_arg_indices;  // args holding dyn-local pointers

  simgpu::FiberGroup* group = nullptr;
  Dim3 group_id;
  int slot = 0;  // VM worker slot owning this state's shared/private VAs
  simgpu::DeviceStats* stats = nullptr;  // per-block accumulation sink
};

/// Collect every __local/__shared__ variable declared in a statement tree.
void CollectSharedVars(const Stmt* s, std::vector<const VarDecl*>* out) {
  if (s == nullptr) return;
  switch (s->kind) {
    case StmtKind::kCompound:
      for (const auto& st : s->As<CompoundStmt>()->body)
        CollectSharedVars(st.get(), out);
      return;
    case StmtKind::kDecl:
      for (const auto& v : s->As<DeclStmt>()->vars)
        if (v->quals.space == AddressSpace::kLocal) out->push_back(v.get());
      return;
    case StmtKind::kIf: {
      const auto* i = s->As<IfStmt>();
      CollectSharedVars(i->then_stmt.get(), out);
      CollectSharedVars(i->else_stmt.get(), out);
      return;
    }
    case StmtKind::kFor: {
      const auto* f = s->As<ForStmt>();
      CollectSharedVars(f->init.get(), out);
      CollectSharedVars(f->body.get(), out);
      return;
    }
    case StmtKind::kWhile:
      CollectSharedVars(s->As<WhileStmt>()->body.get(), out);
      return;
    case StmtKind::kDo:
      CollectSharedVars(s->As<lang::DoStmt>()->body.get(), out);
      return;
    default:
      return;
  }
}

class Evaluator {
 public:
  Evaluator(LaunchState& L, Dim3 lid, int linear_index)
      : L_(L), lid_(lid) {
    const Dim3& blk = L.cfg.block;
    gid_ = Dim3(L.group_id.x * blk.x + lid.x, L.group_id.y * blk.y + lid.y,
                L.group_id.z * blk.z + lid.z);
    private_base_ = L.device->vm().private_base(L.slot) +
                    static_cast<uint64_t>(linear_index) * kPrivateBytesPerItem;
    private_top_ = private_base_;
  }

  double cycles() const { return cycles_; }

  Status Run() {
    frames_.emplace_back();
    frames_.back().stack_top = private_top_;
    BRIDGECL_RETURN_IF_ERROR(BindKernelParams());
    auto flow = Exec(*L_.kernel->body);
    if (!flow.ok()) return flow.status();
    frames_.pop_back();
    return OkStatus();
  }

 private:
  struct Frame {
    std::unordered_map<const VarDecl*, Value> regs;
    std::unordered_map<const VarDecl*, uint64_t> mem;
    std::unordered_map<const VarDecl*, LV> refs;
    uint64_t stack_top = 0;
  };

  Frame& frame() { return frames_.back(); }

  Status Err(std::string msg) { return InternalError(std::move(msg)); }

  // -- cost accounting -----------------------------------------------------
  void ChargeOp(double c) {
    cycles_ += c;
    ++L_.stats->ops_executed;
  }

  Status ChargeAccess(uint64_t va, size_t bytes) {
    BRIDGECL_ASSIGN_OR_RETURN(Segment seg, L_.device->vm().SegmentOf(va));
    const auto& prof = L_.device->profile();
    auto& st = *L_.stats;
    switch (seg) {
      case Segment::kGlobal:
        ++st.global_accesses;
        cycles_ += prof.cost_global_access *
                   std::max<size_t>(1, (bytes + 15) / 16);
        break;
      case Segment::kShared: {
        int words = L_.device->SharedAccessBankWords(va, bytes);
        ++st.shared_accesses;
        st.shared_bank_words += words;
        cycles_ += prof.cost_shared_access * words;
        break;
      }
      case Segment::kConstant:
        ++st.constant_accesses;
        cycles_ += prof.cost_constant_access;
        break;
      case Segment::kPrivate:
        cycles_ += prof.cost_alu * 0.5;
        break;
    }
    return OkStatus();
  }

  // -- memory --------------------------------------------------------------

  /// Re-state a device fault with the coordinates of the work-item that
  /// performed the access, so guarded-memory and injected-fault
  /// diagnostics name the culprit. Device-lost passes through untouched
  /// (the loss is asynchronous, not attributable to one work-item).
  Status FaultAt(const Status& st) {
    if (st.ok() || st.code() == StatusCode::kDeviceLost) return st;
    Status out(st.code(),
               st.message() +
                   StrFormat(" [work-item global (%u,%u,%u), local (%u,%u,%u),"
                             " block %s]",
                             gid_.x, gid_.y, gid_.z, lid_.x, lid_.y, lid_.z,
                             L_.group_id.ToString().c_str()));
    out.set_api_code(st.api_code());
    return out;
  }

  StatusOr<Value> LoadMem(uint64_t va, const Type::Ptr& type) {
    size_t n = type->ByteSize();
    auto p = L_.device->vm().Resolve(va, n);
    if (!p.ok()) return FaultAt(p.status());
    BRIDGECL_RETURN_IF_ERROR(ChargeAccess(va, n));
    return DecodeValue(type, *p);
  }

  Status StoreMem(uint64_t va, const Value& v) {
    size_t n = v.type()->ByteSize();
    auto p = L_.device->vm().Resolve(va, n);
    if (!p.ok()) return FaultAt(p.status());
    BRIDGECL_RETURN_IF_ERROR(ChargeAccess(va, n));
    return EncodeValue(v, *p);
  }

  StatusOr<uint64_t> StackAlloc(size_t bytes, size_t align) {
    uint64_t top = (private_top_ + align - 1) / align * align;
    if (top + bytes > private_base_ + kPrivateBytesPerItem)
      return ResourceExhaustedError("work-item private memory exhausted");
    private_top_ = top + bytes;
    return top;
  }

  // -- kernel parameter binding ---------------------------------------------
  Status BindKernelParams() {
    const auto& params = L_.kernel->params;
    for (size_t i = 0; i < params.size(); ++i) {
      VarDecl* p = params[i].get();
      const Value& v = L_.arg_values[i];
      BRIDGECL_RETURN_IF_ERROR(BindVar(p, v));
    }
    return OkStatus();
  }

  /// Bind a value to a variable, spilling aggregates / address-taken
  /// variables to private memory.
  Status BindVar(const VarDecl* var, const Value& v) {
    Type::Ptr t = var->type;
    if (t && t->is_named() && v.type()) t = v.type();  // template params
    bool needs_mem = var->address_taken ||
                     (t && (t->is_struct() || t->is_array()));
    if (needs_mem) {
      size_t size = t->ByteSize();
      BRIDGECL_ASSIGN_OR_RETURN(uint64_t va,
                                StackAlloc(size, t->Alignment()));
      frame().mem[var] = va;
      Value stored = v;
      if (!lang::SameType(v.type(), t) && !v.is_aggregate())
        stored = v.ConvertTo(t);
      stored.set_type(t);
      if (stored.is_aggregate() && stored.bytes().size() < size)
        stored.bytes().resize(size);
      return StoreMem(va, stored);
    }
    Value stored = v;
    if (t && !lang::SameType(v.type(), t)) stored = v.ConvertTo(t);
    frame().regs[var] = std::move(stored);
    return OkStatus();
  }

  // -- statements ------------------------------------------------------------
  StatusOr<FlowKind> Exec(const Stmt& s) {
    // Deterministic instruction trap: one interpreted statement is one
    // "instruction" for FaultSite::kInstruction plans.
    if (simgpu::FaultInjector& inj = L_.device->faults(); inj.armed())
      BRIDGECL_RETURN_IF_ERROR(FaultAt(inj.OnInstruction()));
    switch (s.kind) {
      case StmtKind::kCompound: {
        for (const auto& st : s.As<CompoundStmt>()->body) {
          BRIDGECL_ASSIGN_OR_RETURN(FlowKind f, Exec(*st));
          if (f != FlowKind::kNormal) return f;
        }
        return FlowKind::kNormal;
      }
      case StmtKind::kDecl: {
        for (const auto& v : s.As<DeclStmt>()->vars)
          BRIDGECL_RETURN_IF_ERROR(ExecVarDecl(v.get()));
        return FlowKind::kNormal;
      }
      case StmtKind::kExpr: {
        BRIDGECL_RETURN_IF_ERROR(Eval(*s.As<ExprStmt>()->expr).status());
        return FlowKind::kNormal;
      }
      case StmtKind::kIf: {
        const auto* i = s.As<IfStmt>();
        BRIDGECL_ASSIGN_OR_RETURN(Value c, Eval(*i->cond));
        ChargeOp(L_.device->profile().cost_alu);
        if (c.AsBool()) return Exec(*i->then_stmt);
        if (i->else_stmt) return Exec(*i->else_stmt);
        return FlowKind::kNormal;
      }
      case StmtKind::kFor: {
        const auto* f = s.As<ForStmt>();
        if (f->init) {
          BRIDGECL_ASSIGN_OR_RETURN(FlowKind fi, Exec(*f->init));
          (void)fi;
        }
        while (true) {
          if (f->cond) {
            BRIDGECL_ASSIGN_OR_RETURN(Value c, Eval(*f->cond));
            ChargeOp(L_.device->profile().cost_alu);
            if (!c.AsBool()) break;
          }
          BRIDGECL_ASSIGN_OR_RETURN(FlowKind fb, Exec(*f->body));
          if (fb == FlowKind::kReturn) return fb;
          if (fb == FlowKind::kBreak) break;
          if (f->step) BRIDGECL_RETURN_IF_ERROR(Eval(*f->step).status());
        }
        return FlowKind::kNormal;
      }
      case StmtKind::kWhile: {
        const auto* w = s.As<WhileStmt>();
        while (true) {
          BRIDGECL_ASSIGN_OR_RETURN(Value c, Eval(*w->cond));
          ChargeOp(L_.device->profile().cost_alu);
          if (!c.AsBool()) break;
          BRIDGECL_ASSIGN_OR_RETURN(FlowKind fb, Exec(*w->body));
          if (fb == FlowKind::kReturn) return fb;
          if (fb == FlowKind::kBreak) break;
        }
        return FlowKind::kNormal;
      }
      case StmtKind::kDo: {
        const auto* d = s.As<lang::DoStmt>();
        while (true) {
          BRIDGECL_ASSIGN_OR_RETURN(FlowKind fb, Exec(*d->body));
          if (fb == FlowKind::kReturn) return fb;
          if (fb == FlowKind::kBreak) break;
          BRIDGECL_ASSIGN_OR_RETURN(Value c, Eval(*d->cond));
          ChargeOp(L_.device->profile().cost_alu);
          if (!c.AsBool()) break;
        }
        return FlowKind::kNormal;
      }
      case StmtKind::kReturn: {
        const auto* r = s.As<ReturnStmt>();
        if (r->value) {
          BRIDGECL_ASSIGN_OR_RETURN(ret_, Eval(*r->value));
        } else {
          ret_ = Value::Void();
        }
        return FlowKind::kReturn;
      }
      case StmtKind::kBreak:
        return FlowKind::kBreak;
      case StmtKind::kContinue:
        return FlowKind::kContinue;
      case StmtKind::kEmpty:
        return FlowKind::kNormal;
    }
    return FlowKind::kNormal;
  }

  Status ExecVarDecl(const VarDecl* var) {
    // Static __local/__shared__ variables: bound to the block's shared
    // region at the pre-computed offset; initialization is not allowed in
    // either model, and the extern dynamic variable maps to the dynamic
    // area start.
    if (var->quals.space == AddressSpace::kLocal) {
      if (var->quals.is_extern) {
        frame().mem[var] = L_.dynamic_shared_va;
        return OkStatus();
      }
      auto it = L_.shared_va.find(var);
      if (it == L_.shared_va.end())
        return Err("unlaid-out shared variable '" + var->name + "'");
      frame().mem[var] = it->second;
      return OkStatus();
    }
    Type::Ptr t = var->type;
    bool needs_mem =
        var->address_taken || (t && (t->is_struct() || t->is_array()));
    if (needs_mem) {
      size_t size = t->ByteSize();
      BRIDGECL_ASSIGN_OR_RETURN(uint64_t va, StackAlloc(size, t->Alignment()));
      frame().mem[var] = va;
      BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                                L_.device->vm().Resolve(va, size));
      std::memset(p, 0, size);
      if (var->init) {
        if (var->init->kind == ExprKind::kInitList) {
          const auto* list = var->init->As<InitListExpr>();
          if (!t->is_array())
            return Err("initializer list on non-array local");
          Type::Ptr elem = t->element();
          size_t esz = elem->ByteSize();
          for (size_t i = 0; i < list->elems.size(); ++i) {
            BRIDGECL_ASSIGN_OR_RETURN(Value ev, Eval(*list->elems[i]));
            BRIDGECL_RETURN_IF_ERROR(StoreMem(va + i * esz,
                                              ev.ConvertTo(elem)));
          }
        } else {
          BRIDGECL_ASSIGN_OR_RETURN(Value ev, Eval(*var->init));
          BRIDGECL_RETURN_IF_ERROR(StoreMem(va, ev.ConvertTo(t)));
        }
      }
      return OkStatus();
    }
    Value init;
    if (var->init) {
      BRIDGECL_ASSIGN_OR_RETURN(init, Eval(*var->init));
      if (t && t->is_named() && init.type()) {
        // Template-typed local: adopt the runtime type.
        frame().regs[var] = std::move(init);
        return OkStatus();
      }
      init = init.ConvertTo(t);
    } else {
      // Zero-initialized register (deterministic simulation).
      if (t && t->is_vector()) {
        init = Value::Vector(t, std::vector<ScalarVal>(t->vector_width()));
      } else {
        init = Value::Int(0).ConvertTo(t ? t : Type::IntTy());
      }
    }
    frame().regs[var] = std::move(init);
    return OkStatus();
  }

  // -- lvalues ---------------------------------------------------------------
  StatusOr<LV> Lval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kDeclRef: {
        const auto* r = e.As<DeclRefExpr>();
        const VarDecl* var = r->var;
        if (var == nullptr)
          return Err("assignment to non-variable '" + r->name + "'");
        // Reference parameter: indirect through the recorded LV.
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
          if (auto f = it->refs.find(var); f != it->refs.end())
            return f->second;
          if (auto f = it->mem.find(var); f != it->mem.end()) {
            LV lv;
            lv.kind = LV::Kind::kMem;
            lv.va = f->second;
            lv.type = var->type;
            return lv;
          }
          if (auto f = it->regs.find(var); f != it->regs.end()) {
            LV lv;
            lv.kind = LV::Kind::kReg;
            lv.reg = &f->second;
            lv.type = f->second.type() ? f->second.type() : var->type;
            return lv;
          }
        }
        if (uint64_t va = L_.module->VaOf(var)) {
          LV lv;
          lv.kind = LV::Kind::kMem;
          lv.va = va;
          lv.type = var->type;
          return lv;
        }
        return Err("unbound variable '" + r->name + "'");
      }
      case ExprKind::kParen:
        return Lval(*e.As<ParenExpr>()->inner);
      case ExprKind::kUnary: {
        const auto* u = e.As<UnaryExpr>();
        if (u->op != UnaryOp::kDeref)
          return Err("expression is not assignable");
        BRIDGECL_ASSIGN_OR_RETURN(Value p, Eval(*u->operand));
        LV lv;
        lv.kind = LV::Kind::kMem;
        lv.va = p.AsVa();
        lv.type = e.type ? e.type
                         : (p.type() && p.type()->is_pointer()
                                ? p.type()->pointee()
                                : Type::IntTy());
        return lv;
      }
      case ExprKind::kIndex: {
        const auto* ix = e.As<IndexExpr>();
        Type::Ptr bt = ix->base->type;
        // Vector component via dynamic index: v[i].
        if (bt && bt->is_vector()) {
          BRIDGECL_ASSIGN_OR_RETURN(LV base, Lval(*ix->base));
          BRIDGECL_ASSIGN_OR_RETURN(Value idx, Eval(*ix->index));
          base.swizzle = {static_cast<int>(idx.AsI64())};
          return base;
        }
        BRIDGECL_ASSIGN_OR_RETURN(Value idx, Eval(*ix->index));
        Type::Ptr elem = e.type;
        if (!elem) return Err("untyped subscript");
        ChargeOp(L_.device->profile().cost_alu);
        uint64_t base_va;
        if (bt && bt->is_array()) {
          // Multi-dimensional arrays: the base is itself an aggregate
          // location (tile[ty][tx]); index into its address directly.
          BRIDGECL_ASSIGN_OR_RETURN(LV base_lv, Lval(*ix->base));
          if (base_lv.kind != LV::Kind::kMem)
            return Err("subscript on non-addressable array");
          base_va = base_lv.va;
        } else {
          BRIDGECL_ASSIGN_OR_RETURN(Value base, Eval(*ix->base));
          base_va = base.AsVa();
        }
        LV lv;
        lv.kind = LV::Kind::kMem;
        lv.va = base_va + idx.AsI64() * elem->ByteSize();
        lv.type = elem;
        return lv;
      }
      case ExprKind::kMember: {
        const auto* m = e.As<MemberExpr>();
        if (m->is_swizzle) {
          BRIDGECL_ASSIGN_OR_RETURN(LV base, Lval(*m->base));
          if (!base.swizzle.empty())
            return Err("nested swizzle assignment is not supported");
          base.swizzle = m->swizzle;
          return base;
        }
        // Struct member.
        Type::Ptr agg_t;
        uint64_t base_va = 0;
        if (m->is_arrow) {
          BRIDGECL_ASSIGN_OR_RETURN(Value p, Eval(*m->base));
          agg_t = p.type() && p.type()->is_pointer() ? p.type()->pointee()
                                                     : nullptr;
          base_va = p.AsVa();
        } else {
          BRIDGECL_ASSIGN_OR_RETURN(LV base, Lval(*m->base));
          if (base.kind != LV::Kind::kMem)
            return Err("struct member write requires memory-backed struct");
          agg_t = base.type;
          base_va = base.va;
        }
        if (!agg_t || !agg_t->is_struct())
          return Err("member access on non-struct");
        const lang::StructField* f = agg_t->struct_decl()->FindField(m->member);
        if (f == nullptr) return Err("no field '" + m->member + "'");
        LV lv;
        lv.kind = LV::Kind::kMem;
        lv.va = base_va + f->offset;
        lv.type = f->type;
        return lv;
      }
      default:
        return Err("expression is not assignable");
    }
  }

  StatusOr<Value> Read(const LV& lv) {
    Value whole;
    if (lv.kind == LV::Kind::kMem) {
      BRIDGECL_ASSIGN_OR_RETURN(whole, LoadMem(lv.va, lv.type));
    } else {
      whole = *lv.reg;
    }
    if (lv.swizzle.empty()) return whole;
    if (!whole.is_vector()) return Err("swizzle read of non-vector");
    if (lv.swizzle.size() == 1) return whole.Component(lv.swizzle[0]);
    std::vector<ScalarVal> comps;
    comps.reserve(lv.swizzle.size());
    for (int i : lv.swizzle) comps.push_back(whole.comps()[i]);
    return Value::Vector(Type::Vector(whole.type()->scalar_kind(),
                                      static_cast<int>(lv.swizzle.size())),
                         std::move(comps));
  }

  Status Write(const LV& lv, const Value& v) {
    if (lv.swizzle.empty()) {
      Value stored = v;
      if (lv.type && !lang::SameType(v.type(), lv.type))
        stored = v.ConvertTo(lv.type);
      if (lv.kind == LV::Kind::kMem) return StoreMem(lv.va, stored);
      *lv.reg = std::move(stored);
      return OkStatus();
    }
    // Swizzled store: read-modify-write the base vector.
    Value whole;
    if (lv.kind == LV::Kind::kMem) {
      BRIDGECL_ASSIGN_OR_RETURN(whole, LoadMem(lv.va, lv.type));
    } else {
      whole = *lv.reg;
    }
    if (!whole.is_vector()) return Err("swizzle write of non-vector");
    ScalarKind ek = whole.type()->scalar_kind();
    if (lv.swizzle.size() == 1) {
      Value c = v.ConvertTo(Type::Scalar(ek));
      whole.comps()[lv.swizzle[0]] = c.scalar();
    } else {
      Value src = v.ConvertTo(
          Type::Vector(ek, static_cast<int>(lv.swizzle.size())));
      for (size_t i = 0; i < lv.swizzle.size(); ++i)
        whole.comps()[lv.swizzle[i]] = src.comps()[i];
    }
    if (lv.kind == LV::Kind::kMem) return StoreMem(lv.va, whole);
    *lv.reg = std::move(whole);
    return OkStatus();
  }

  // -- expression evaluation ---------------------------------------------------
  StatusOr<Value> Eval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: {
        const auto* i = e.As<IntLitExpr>();
        if (e.type) return Value::UInt(i->value).ConvertTo(e.type);
        return Value::Int(static_cast<int64_t>(i->value));
      }
      case ExprKind::kFloatLit: {
        const auto* f = e.As<FloatLitExpr>();
        return Value::Float(f->value, f->is_float ? ScalarKind::kFloat
                                                  : ScalarKind::kDouble);
      }
      case ExprKind::kDeclRef:
        return EvalDeclRef(*e.As<DeclRefExpr>());
      case ExprKind::kStringLit:
        // Format strings are only consumed by printf/assert, which the
        // simulator does not interpret; an opaque handle suffices.
        return Value::Pointer(0, e.type ? e.type : Type::IntTy());
      case ExprKind::kParen:
        return Eval(*e.As<ParenExpr>()->inner);
      case ExprKind::kUnary:
        return EvalUnary(*e.As<UnaryExpr>());
      case ExprKind::kBinary:
        return EvalBinary(*e.As<BinaryExpr>());
      case ExprKind::kAssign:
        return EvalAssign(*e.As<AssignExpr>());
      case ExprKind::kConditional: {
        const auto* c = e.As<ConditionalExpr>();
        BRIDGECL_ASSIGN_OR_RETURN(Value cond, Eval(*c->cond));
        ChargeOp(L_.device->profile().cost_alu);
        return cond.AsBool() ? Eval(*c->then_expr) : Eval(*c->else_expr);
      }
      case ExprKind::kCall:
        return EvalCall(*e.As<CallExpr>());
      case ExprKind::kIndex: {
        const auto* ix = e.As<IndexExpr>();
        Type::Ptr bt = ix->base->type;
        if (bt && bt->is_vector()) {
          BRIDGECL_ASSIGN_OR_RETURN(Value base, Eval(*ix->base));
          BRIDGECL_ASSIGN_OR_RETURN(Value idx, Eval(*ix->index));
          int i = static_cast<int>(idx.AsI64());
          if (i < 0 || i >= static_cast<int>(base.comps().size()))
            return Err("vector component index out of range");
          return base.Component(i);
        }
        BRIDGECL_ASSIGN_OR_RETURN(LV lv, Lval(e));
        return Read(lv);
      }
      case ExprKind::kMember:
        return EvalMember(*e.As<MemberExpr>());
      case ExprKind::kCast: {
        const auto* c = e.As<CastExpr>();
        BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c->operand));
        ChargeOp(L_.device->profile().cost_alu * 0.5);
        if (c->style == lang::CastStyle::kReinterpret && c->target &&
            !c->target->is_pointer() && v.type() &&
            v.type()->ByteSize() == c->target->ByteSize()) {
          return v.BitcastTo(c->target);
        }
        return v.ConvertTo(c->target);
      }
      case ExprKind::kInitList:
        return Err("brace initializer outside a declaration");
      case ExprKind::kSizeof: {
        const auto* s = e.As<SizeofExpr>();
        size_t n = s->arg_type ? s->arg_type->ByteSize()
                               : (s->arg_expr->type
                                      ? s->arg_expr->type->ByteSize()
                                      : 0);
        return Value::UInt(n, ScalarKind::kSizeT);
      }
      case ExprKind::kVectorLit: {
        const auto* v = e.As<VectorLitExpr>();
        int w = v->vec_type->vector_width();
        ScalarKind ek = v->vec_type->scalar_kind();
        std::vector<ScalarVal> comps(w);
        if (v->elems.size() == 1) {
          BRIDGECL_ASSIGN_OR_RETURN(Value ev, Eval(*v->elems[0]));
          ScalarVal c = ev.ConvertTo(Type::Scalar(ek)).scalar();
          for (int i = 0; i < w; ++i) comps[i] = c;
        } else {
          int at = 0;
          for (const auto& el : v->elems) {
            BRIDGECL_ASSIGN_OR_RETURN(Value ev, Eval(*el));
            if (ev.is_vector()) {
              for (int i = 0; i < ev.type()->vector_width() && at < w; ++i)
                comps[at++] =
                    ev.Component(i).ConvertTo(Type::Scalar(ek)).scalar();
            } else if (at < w) {
              comps[at++] = ev.ConvertTo(Type::Scalar(ek)).scalar();
            }
          }
          if (at != w)
            return Err("wrong number of vector literal components");
        }
        ChargeOp(L_.device->profile().cost_alu);
        return Value::Vector(v->vec_type, std::move(comps));
      }
    }
    return Err("unhandled expression kind");
  }

  StatusOr<Value> EvalDeclRef(const DeclRefExpr& r) {
    if (r.var != nullptr) {
      const VarDecl* var = r.var;
      for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        if (auto f = it->refs.find(var); f != it->refs.end())
          return Read(f->second);
        if (auto f = it->mem.find(var); f != it->mem.end()) {
          Type::Ptr t = var->type;
          // Arrays decay to a pointer to their first element.
          if (t && t->is_array()) {
            AddressSpace sp = var->quals.space;
            return Value::Pointer(f->second,
                                  Type::Pointer(t->element(), sp));
          }
          return LoadMem(f->second, t);
        }
        if (auto f = it->regs.find(var); f != it->regs.end())
          return f->second;
      }
      if (uint64_t va = L_.module->VaOf(var)) {
        Type::Ptr t = var->type;
        if (t && t->is_array())
          return Value::Pointer(va, Type::Pointer(t->element(),
                                                  var->quals.space));
        return LoadMem(va, t);
      }
      return Err("unbound variable '" + r.name + "'");
    }
    // CUDA built-in index variables.
    if (r.is_builtin) {
      auto vec3 = [&](const Dim3& d) {
        std::vector<ScalarVal> c(3);
        c[0].u = d.x;
        c[1].u = d.y;
        c[2].u = d.z;
        return Value::Vector(Type::Vector(ScalarKind::kUInt, 3),
                             std::move(c));
      };
      if (r.name == "threadIdx") return vec3(lid_);
      if (r.name == "blockIdx") return vec3(L_.group_id);
      if (r.name == "blockDim") return vec3(L_.cfg.block);
      if (r.name == "gridDim") return vec3(L_.cfg.grid);
      if (r.name == "warpSize")
        return Value::Int(L_.device->profile().warp_size);
      if (auto c = NamedConstantValue(r.name))
        return Value::UInt(*c);
      return Err("unknown builtin constant '" + r.name + "'");
    }
    // Texture reference.
    if (L_.module->FindTextureRef(r.name) != nullptr) {
      BRIDGECL_ASSIGN_OR_RETURN(uint64_t desc_va,
                                L_.module->TextureBinding(r.name));
      return Value::Pointer(desc_va, r.type ? r.type : Type::IntTy());
    }
    return Err("unresolved identifier '" + r.name + "'");
  }

  StatusOr<Value> EvalMember(const MemberExpr& m) {
    if (m.is_swizzle) {
      BRIDGECL_ASSIGN_OR_RETURN(Value base, Eval(*m.base));
      if (!base.is_vector()) return Err("swizzle on non-vector");
      if (m.swizzle.size() == 1) return base.Component(m.swizzle[0]);
      std::vector<ScalarVal> comps;
      for (int i : m.swizzle) {
        if (i >= static_cast<int>(base.comps().size()))
          return Err("swizzle component out of range");
        comps.push_back(base.comps()[i]);
      }
      // Width must be captured before std::move(comps): C++ does not
      // specify argument evaluation order.
      int width = static_cast<int>(comps.size());
      return Value::Vector(Type::Vector(base.type()->scalar_kind(), width),
                           std::move(comps));
    }
    // Struct member.
    Type::Ptr bt = m.base->type;
    if (m.is_arrow || (bt && bt->is_struct())) {
      // Try the lvalue path (memory-backed) first.
      auto lv = Lval(m);
      if (lv.ok()) return Read(*lv);
      // Rvalue aggregate: extract from the byte image.
      BRIDGECL_ASSIGN_OR_RETURN(Value base, Eval(*m.base));
      if (!base.is_aggregate()) return lv.status();
      const lang::StructDecl* sd = base.type()->struct_decl();
      const lang::StructField* f = sd->FindField(m.member);
      if (f == nullptr) return Err("no field '" + m.member + "'");
      return DecodeValue(f->type, base.bytes().data() + f->offset);
    }
    return Err("member access on unsupported base");
  }

  StatusOr<Value> EvalUnary(const UnaryExpr& u) {
    const auto& prof = L_.device->profile();
    switch (u.op) {
      case UnaryOp::kAddrOf: {
        BRIDGECL_ASSIGN_OR_RETURN(LV lv, Lval(*u.operand));
        if (lv.kind != LV::Kind::kMem)
          return Err("address of non-addressable value");
        Type::Ptr pt =
            u.operand->type
                ? Type::Pointer(u.operand->type, AddressSpace::kPrivate)
                : Type::Pointer(Type::IntTy(), AddressSpace::kPrivate);
        return Value::Pointer(lv.va, pt);
      }
      case UnaryOp::kDeref: {
        BRIDGECL_ASSIGN_OR_RETURN(Value p, Eval(*u.operand));
        Type::Ptr t = p.type() && p.type()->is_pointer()
                          ? p.type()->pointee()
                          : Type::IntTy();
        return LoadMem(p.AsVa(), t);
      }
      case UnaryOp::kPreInc:
      case UnaryOp::kPreDec:
      case UnaryOp::kPostInc:
      case UnaryOp::kPostDec: {
        BRIDGECL_ASSIGN_OR_RETURN(LV lv, Lval(*u.operand));
        BRIDGECL_ASSIGN_OR_RETURN(Value old, Read(lv));
        ChargeOp(prof.cost_alu);
        int64_t delta =
            (u.op == UnaryOp::kPreInc || u.op == UnaryOp::kPostInc) ? 1 : -1;
        Value next;
        if (old.type() && old.type()->is_pointer()) {
          next = Value::Pointer(
              old.AsVa() + delta * old.type()->pointee()->ByteSize(),
              old.type());
        } else if (old.type() && old.type()->is_float()) {
          next = Value::Float(old.AsF64() + delta, old.type()->scalar_kind());
        } else {
          next = Value::Int(old.AsI64() + delta,
                            old.type() ? old.type()->scalar_kind()
                                       : ScalarKind::kInt);
        }
        BRIDGECL_RETURN_IF_ERROR(Write(lv, next));
        bool pre = u.op == UnaryOp::kPreInc || u.op == UnaryOp::kPreDec;
        return pre ? next : old;
      }
      case UnaryOp::kPlus:
        return Eval(*u.operand);
      case UnaryOp::kMinus: {
        BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*u.operand));
        ChargeOp(prof.cost_alu);
        if (v.is_vector()) {
          Value out = v;
          bool flt = IsFloatScalar(v.type()->scalar_kind());
          for (auto& c : out.comps()) {
            if (flt)
              c.f = -c.f;
            else
              c.i = -c.i;
          }
          return out;
        }
        if (v.type() && v.type()->is_float())
          return Value::Float(-v.AsF64(), v.type()->scalar_kind());
        return Value::Int(-v.AsI64(), v.type() ? v.type()->scalar_kind()
                                               : ScalarKind::kInt);
      }
      case UnaryOp::kNot: {
        BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*u.operand));
        ChargeOp(prof.cost_alu);
        return Value::Int(v.AsBool() ? 0 : 1);
      }
      case UnaryOp::kBitNot: {
        BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*u.operand));
        ChargeOp(prof.cost_alu);
        if (v.is_vector()) {
          Value out = v;
          for (auto& c : out.comps()) c.u = ~c.u;
          return out.ConvertTo(v.type());
        }
        return Value::Int(~v.AsI64(), v.type() ? v.type()->scalar_kind()
                                               : ScalarKind::kInt);
      }
    }
    return Err("unhandled unary operator");
  }

  static ScalarVal ApplyScalarOp(BinaryOp op, ScalarVal a, ScalarVal b,
                                 ScalarKind k, Status* err) {
    ScalarVal out{};
    bool flt = IsFloatScalar(k);
    bool sgn = IsSignedScalar(k);
    auto div0 = [&] {
      *err = InternalError("division by zero in kernel");
      return out;
    };
    switch (op) {
      case BinaryOp::kAdd:
        if (flt) out.f = a.f + b.f; else out.i = a.i + b.i;
        return out;
      case BinaryOp::kSub:
        if (flt) out.f = a.f - b.f; else out.i = a.i - b.i;
        return out;
      case BinaryOp::kMul:
        if (flt) out.f = a.f * b.f; else out.i = a.i * b.i;
        return out;
      case BinaryOp::kDiv:
        if (flt) {
          out.f = a.f / b.f;
        } else if (sgn) {
          if (b.i == 0) return div0();
          out.i = a.i / b.i;
        } else {
          if (b.u == 0) return div0();
          out.u = a.u / b.u;
        }
        return out;
      case BinaryOp::kRem:
        if (flt) {
          out.f = std::fmod(a.f, b.f);
        } else if (sgn) {
          if (b.i == 0) return div0();
          out.i = a.i % b.i;
        } else {
          if (b.u == 0) return div0();
          out.u = a.u % b.u;
        }
        return out;
      case BinaryOp::kShl:
        out.u = a.u << (b.u & 63);
        return out;
      case BinaryOp::kShr:
        if (sgn) out.i = a.i >> (b.u & 63);
        else out.u = a.u >> (b.u & 63);
        return out;
      case BinaryOp::kAnd: out.u = a.u & b.u; return out;
      case BinaryOp::kOr: out.u = a.u | b.u; return out;
      case BinaryOp::kXor: out.u = a.u ^ b.u; return out;
      case BinaryOp::kEQ:
        out.i = flt ? (a.f == b.f) : (a.u == b.u);
        return out;
      case BinaryOp::kNE:
        out.i = flt ? (a.f != b.f) : (a.u != b.u);
        return out;
      case BinaryOp::kLT:
        out.i = flt ? (a.f < b.f) : sgn ? (a.i < b.i) : (a.u < b.u);
        return out;
      case BinaryOp::kGT:
        out.i = flt ? (a.f > b.f) : sgn ? (a.i > b.i) : (a.u > b.u);
        return out;
      case BinaryOp::kLE:
        out.i = flt ? (a.f <= b.f) : sgn ? (a.i <= b.i) : (a.u <= b.u);
        return out;
      case BinaryOp::kGE:
        out.i = flt ? (a.f >= b.f) : sgn ? (a.i >= b.i) : (a.u >= b.u);
        return out;
      default:
        *err = InternalError("unhandled scalar binary op");
        return out;
    }
  }

  StatusOr<Value> ApplyBinary(BinaryOp op, const Value& a, const Value& b) {
    const auto& prof = L_.device->profile();
    double c = (op == BinaryOp::kDiv || op == BinaryOp::kRem)
                   ? prof.cost_div
                   : prof.cost_alu;
    // Pointer arithmetic.
    bool cmp = op == BinaryOp::kEQ || op == BinaryOp::kNE ||
               op == BinaryOp::kLT || op == BinaryOp::kGT ||
               op == BinaryOp::kLE || op == BinaryOp::kGE;
    if (a.type() && a.type()->is_pointer() && !cmp) {
      ChargeOp(c);
      size_t esz = a.type()->pointee()->ByteSize();
      if (op == BinaryOp::kSub && b.type() && b.type()->is_pointer()) {
        return Value::Int(
            static_cast<int64_t>(a.AsVa() - b.AsVa()) /
                static_cast<int64_t>(esz),
            ScalarKind::kLong);
      }
      int64_t off = b.AsI64();
      uint64_t va = op == BinaryOp::kSub ? a.AsVa() - off * esz
                                         : a.AsVa() + off * esz;
      return Value::Pointer(va, a.type());
    }
    if (b.type() && b.type()->is_pointer() && op == BinaryOp::kAdd) {
      return ApplyBinary(op, b, a);
    }
    // Vector / scalar elementwise.
    if ((a.is_vector() || b.is_vector())) {
      const Value& vec = a.is_vector() ? a : b;
      int w = vec.type()->vector_width();
      ScalarKind ek = ArithmeticResultType(a.type(), b.type())
                          ->scalar_kind();
      Type::Ptr et = Type::Scalar(ek);
      Value av = a.ConvertTo(Type::Vector(ek, w));
      Value bv = b.ConvertTo(Type::Vector(ek, w));
      std::vector<ScalarVal> comps(w);
      Status err;
      for (int i = 0; i < w; ++i) {
        comps[i] = ApplyScalarOp(op, av.comps()[i], bv.comps()[i], ek, &err);
        if (!err.ok()) return err;
      }
      ChargeOp(c * w);
      if (cmp) {
        // Vector comparisons produce an int vector of 0/-1 per OpenCL.
        for (auto& s : comps) s.i = s.i ? -1 : 0;
        return Value::Vector(Type::Vector(ScalarKind::kInt, w),
                             std::move(comps));
      }
      return Value::Vector(Type::Vector(ek, w), std::move(comps));
    }
    // Scalars: usual conversions.
    Type::Ptr rt = ArithmeticResultType(a.type(), b.type());
    ScalarKind k = rt->scalar_kind();
    if (cmp) {
      // Compare in the common type but return int.
      Value ac = a.ConvertTo(Type::Scalar(k));
      Value bc = b.ConvertTo(Type::Scalar(k));
      Status err;
      ScalarVal r = ApplyScalarOp(op, ac.scalar(), bc.scalar(), k, &err);
      if (!err.ok()) return err;
      ChargeOp(c);
      return Value::Int(r.i);
    }
    Value ac = a.ConvertTo(Type::Scalar(k));
    Value bc = b.ConvertTo(Type::Scalar(k));
    Status err;
    ScalarVal r = ApplyScalarOp(op, ac.scalar(), bc.scalar(), k, &err);
    if (!err.ok()) return err;
    ChargeOp(c);
    Value out;
    out.set_type(Type::Scalar(k));
    out.set_scalar(r);
    return out;
  }

  StatusOr<Value> EvalBinary(const BinaryExpr& b) {
    if (b.op == BinaryOp::kLAnd) {
      BRIDGECL_ASSIGN_OR_RETURN(Value l, Eval(*b.lhs));
      ChargeOp(L_.device->profile().cost_alu);
      if (!l.AsBool()) return Value::Int(0);
      BRIDGECL_ASSIGN_OR_RETURN(Value r, Eval(*b.rhs));
      return Value::Int(r.AsBool() ? 1 : 0);
    }
    if (b.op == BinaryOp::kLOr) {
      BRIDGECL_ASSIGN_OR_RETURN(Value l, Eval(*b.lhs));
      ChargeOp(L_.device->profile().cost_alu);
      if (l.AsBool()) return Value::Int(1);
      BRIDGECL_ASSIGN_OR_RETURN(Value r, Eval(*b.rhs));
      return Value::Int(r.AsBool() ? 1 : 0);
    }
    if (b.op == BinaryOp::kComma) {
      BRIDGECL_RETURN_IF_ERROR(Eval(*b.lhs).status());
      return Eval(*b.rhs);
    }
    BRIDGECL_ASSIGN_OR_RETURN(Value l, Eval(*b.lhs));
    BRIDGECL_ASSIGN_OR_RETURN(Value r, Eval(*b.rhs));
    return ApplyBinary(b.op, l, r);
  }

  StatusOr<Value> EvalAssign(const AssignExpr& a) {
    BRIDGECL_ASSIGN_OR_RETURN(Value rhs, Eval(*a.rhs));
    BRIDGECL_ASSIGN_OR_RETURN(LV lv, Lval(*a.lhs));
    if (a.compound) {
      BRIDGECL_ASSIGN_OR_RETURN(Value old, Read(lv));
      BRIDGECL_ASSIGN_OR_RETURN(rhs, ApplyBinary(a.op, old, rhs));
    }
    BRIDGECL_RETURN_IF_ERROR(Write(lv, rhs));
    return rhs;
  }

  // -- calls ---------------------------------------------------------------
  StatusOr<Value> EvalCall(const CallExpr& c) {
    std::string name = c.callee_name();
    const DeclRefExpr* ref =
        c.callee->kind == ExprKind::kDeclRef ? c.callee->As<DeclRefExpr>()
                                             : nullptr;
    if (ref != nullptr && ref->function != nullptr && ref->function->body) {
      return CallFunction(ref->function, c);
    }
    return CallBuiltin(name, c);
  }

  StatusOr<Value> CallFunction(const FunctionDecl* fn, const CallExpr& c) {
    if (static_cast<int>(frames_.size()) > kMaxCallDepth)
      return Err("device call stack overflow (recursion too deep)");
    if (c.args.size() != fn->params.size())
      return Err("wrong argument count calling '" + fn->name + "'");
    Frame new_frame;
    new_frame.stack_top = private_top_;
    // Evaluate arguments in the caller's frame.
    std::vector<Value> vals(c.args.size());
    std::vector<LV> ref_lvs(c.args.size());
    std::vector<bool> is_ref(c.args.size(), false);
    for (size_t i = 0; i < c.args.size(); ++i) {
      bool by_ref = i < fn->param_is_reference.size() &&
                    fn->param_is_reference[i];
      if (by_ref) {
        BRIDGECL_ASSIGN_OR_RETURN(ref_lvs[i], Lval(*c.args[i]));
        is_ref[i] = true;
      } else {
        BRIDGECL_ASSIGN_OR_RETURN(vals[i], Eval(*c.args[i]));
      }
    }
    uint64_t saved_top = private_top_;
    frames_.push_back(std::move(new_frame));
    for (size_t i = 0; i < c.args.size(); ++i) {
      if (is_ref[i]) {
        frame().refs[fn->params[i].get()] = ref_lvs[i];
      } else {
        BRIDGECL_RETURN_IF_ERROR(BindVar(fn->params[i].get(), vals[i]));
      }
    }
    ret_ = Value::Void();
    auto flow = Exec(*fn->body);
    frames_.pop_back();
    private_top_ = saved_top;
    if (!flow.ok()) return flow.status();
    ChargeOp(L_.device->profile().cost_alu);  // call overhead
    return ret_;
  }

  // ---- builtin implementations ----
  StatusOr<Value> CallBuiltin(const std::string& name, const CallExpr& c);
  StatusOr<Value> EvalImageRead(const std::string& name, const CallExpr& c);
  StatusOr<Value> EvalImageWrite(const std::string& name, const CallExpr& c);
  StatusOr<Value> EvalTexFetch(const std::string& name, const CallExpr& c);
  StatusOr<Value> EvalAtomic(const std::string& name, const CallExpr& c);
  StatusOr<ImageDesc> LoadImageDesc(uint64_t va);
  StatusOr<Value> ReadTexel(const ImageDesc& d, int x, int y, int z,
                            ScalarKind out_kind);

  LaunchState& L_;
  Dim3 lid_;
  Dim3 gid_;
  uint64_t private_base_ = 0;
  uint64_t private_top_ = 0;
  double cycles_ = 0;
  std::vector<Frame> frames_;
  Value ret_;

 public:
  double TakeCycles() { return cycles_; }
};

StatusOr<ImageDesc> Evaluator::LoadImageDesc(uint64_t va) {
  BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                            L_.device->vm().Resolve(va, sizeof(ImageDesc)));
  ImageDesc d;
  std::memcpy(&d, p, sizeof(d));
  return d;
}

StatusOr<Value> Evaluator::ReadTexel(const ImageDesc& d, int x, int y, int z,
                                     ScalarKind out_kind) {
  auto clampi = [](int v, int lo, int hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  x = clampi(x, 0, static_cast<int>(d.width) - 1);
  y = clampi(y, 0, static_cast<int>(d.height) - 1);
  z = clampi(z, 0, static_cast<int>(d.depth) - 1);
  uint32_t texel = ImageTexelBytes(d);
  uint64_t va = d.data_va + static_cast<uint64_t>(z) * d.slice_pitch +
                static_cast<uint64_t>(y) * d.row_pitch +
                static_cast<uint64_t>(x) * texel;
  ScalarKind ek = static_cast<ScalarKind>(d.elem_kind);
  size_t esz = lang::ScalarByteSize(ek);
  BRIDGECL_ASSIGN_OR_RETURN(std::byte * p, L_.device->vm().Resolve(va, texel));
  ++L_.stats->image_accesses;
  cycles_ += L_.device->profile().cost_image_access;
  std::vector<ScalarVal> comps(4);
  for (uint32_t ch = 0; ch < 4; ++ch) {
    if (ch < d.channels) {
      BRIDGECL_ASSIGN_OR_RETURN(Value v,
                                DecodeValue(Type::Scalar(ek), p + ch * esz));
      comps[ch] = v.ConvertTo(Type::Scalar(out_kind)).scalar();
    } else {
      // Missing channels read as 0 (alpha as 1.0 for floats).
      if (ch == 3 && IsFloatScalar(out_kind)) comps[ch].f = 1.0;
    }
  }
  return Value::Vector(Type::Vector(out_kind, 4), std::move(comps));
}

StatusOr<Value> Evaluator::EvalImageRead(const std::string& name,
                                         const CallExpr& c) {
  if (c.args.size() < 2) return Err(name + ": too few arguments");
  BRIDGECL_ASSIGN_OR_RETURN(Value img, Eval(*c.args[0]));
  BRIDGECL_ASSIGN_OR_RETURN(ImageDesc d, LoadImageDesc(img.AsVa()));
  uint32_t sampler_bits = d.sampler_bits;
  const Expr* coord_expr = c.args.back().get();
  if (c.args.size() == 3) {
    BRIDGECL_ASSIGN_OR_RETURN(Value s, Eval(*c.args[1]));
    sampler_bits = static_cast<uint32_t>(s.AsU64());
  }
  ScalarKind out_kind = name == "read_imagef"   ? ScalarKind::kFloat
                        : name == "read_imagei" ? ScalarKind::kInt
                                                : ScalarKind::kUInt;
  BRIDGECL_ASSIGN_OR_RETURN(Value coord, Eval(*coord_expr));
  bool float_coords =
      coord.type() && IsFloatScalar(coord.type()->scalar_kind());

  double fx = 0, fy = 0, fz = 0;
  if (coord.is_vector()) {
    fx = coord.Component(0).AsF64();
    if (coord.type()->vector_width() > 1) fy = coord.Component(1).AsF64();
    if (coord.type()->vector_width() > 2) fz = coord.Component(2).AsF64();
  } else {
    fx = coord.AsF64();
  }
  if (float_coords && (sampler_bits & kSamplerNormalizedCoords)) {
    fx *= d.width;
    fy *= d.height;
    fz *= d.depth;
  }
  if (float_coords && (sampler_bits & kSamplerFilterLinear)) {
    // Bilinear filtering (2D path; 1D degenerates, 3D uses nearest z).
    double u = fx - 0.5, v = fy - 0.5;
    int x0 = static_cast<int>(std::floor(u));
    int y0 = static_cast<int>(std::floor(v));
    double a = u - x0, b = v - y0;
    Value t00, t10, t01, t11;
    BRIDGECL_ASSIGN_OR_RETURN(
        t00, ReadTexel(d, x0, y0, static_cast<int>(fz), out_kind));
    BRIDGECL_ASSIGN_OR_RETURN(
        t10, ReadTexel(d, x0 + 1, y0, static_cast<int>(fz), out_kind));
    BRIDGECL_ASSIGN_OR_RETURN(
        t01, ReadTexel(d, x0, y0 + 1, static_cast<int>(fz), out_kind));
    BRIDGECL_ASSIGN_OR_RETURN(
        t11, ReadTexel(d, x0 + 1, y0 + 1, static_cast<int>(fz), out_kind));
    std::vector<ScalarVal> comps(4);
    for (int i = 0; i < 4; ++i) {
      double r = t00.comps()[i].f * (1 - a) * (1 - b) +
                 t10.comps()[i].f * a * (1 - b) +
                 t01.comps()[i].f * (1 - a) * b + t11.comps()[i].f * a * b;
      comps[i].f = r;
    }
    return Value::Vector(Type::Vector(out_kind, 4), std::move(comps));
  }
  return ReadTexel(d, static_cast<int>(fx), static_cast<int>(fy),
                   static_cast<int>(fz), out_kind);
}

StatusOr<Value> Evaluator::EvalImageWrite(const std::string& name,
                                          const CallExpr& c) {
  if (c.args.size() != 3) return Err(name + ": expected 3 arguments");
  BRIDGECL_ASSIGN_OR_RETURN(Value img, Eval(*c.args[0]));
  BRIDGECL_ASSIGN_OR_RETURN(ImageDesc d, LoadImageDesc(img.AsVa()));
  BRIDGECL_ASSIGN_OR_RETURN(Value coord, Eval(*c.args[1]));
  BRIDGECL_ASSIGN_OR_RETURN(Value color, Eval(*c.args[2]));
  int x = 0, y = 0, z = 0;
  if (coord.is_vector()) {
    x = static_cast<int>(coord.Component(0).AsI64());
    if (coord.type()->vector_width() > 1)
      y = static_cast<int>(coord.Component(1).AsI64());
    if (coord.type()->vector_width() > 2)
      z = static_cast<int>(coord.Component(2).AsI64());
  } else {
    x = static_cast<int>(coord.AsI64());
  }
  if (x < 0 || x >= static_cast<int>(d.width) || y < 0 ||
      y >= static_cast<int>(d.height) || z < 0 ||
      z >= static_cast<int>(d.depth))
    return Value::Void();  // out-of-bounds writes are dropped (CL rule)
  ScalarKind ek = static_cast<ScalarKind>(d.elem_kind);
  size_t esz = lang::ScalarByteSize(ek);
  uint64_t va = d.data_va + static_cast<uint64_t>(z) * d.slice_pitch +
                static_cast<uint64_t>(y) * d.row_pitch +
                static_cast<uint64_t>(x) * ImageTexelBytes(d);
  BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                            L_.device->vm().Resolve(va, ImageTexelBytes(d)));
  ++L_.stats->image_accesses;
  cycles_ += L_.device->profile().cost_image_access;
  for (uint32_t ch = 0; ch < d.channels; ++ch) {
    Value comp = color.is_vector() ? color.Component(ch) : color;
    BRIDGECL_RETURN_IF_ERROR(
        EncodeValue(comp.ConvertTo(Type::Scalar(ek)), p + ch * esz));
  }
  return Value::Void();
}

StatusOr<Value> Evaluator::EvalTexFetch(const std::string& name,
                                        const CallExpr& c) {
  if (c.args.size() < 2) return Err(name + ": too few arguments");
  BRIDGECL_ASSIGN_OR_RETURN(Value tex, Eval(*c.args[0]));
  BRIDGECL_ASSIGN_OR_RETURN(ImageDesc d, LoadImageDesc(tex.AsVa()));
  Type::Ptr tex_t = c.args[0]->type;
  ScalarKind out_kind =
      tex_t && tex_t->is_texture() ? tex_t->scalar_kind() : ScalarKind::kFloat;
  int out_width = tex_t && tex_t->is_texture() ? tex_t->vector_width() : 1;

  double fx = 0, fy = 0, fz = 0;
  BRIDGECL_ASSIGN_OR_RETURN(Value cx, Eval(*c.args[1]));
  fx = cx.AsF64();
  if (c.args.size() > 2) {
    BRIDGECL_ASSIGN_OR_RETURN(Value cy, Eval(*c.args[2]));
    fy = cy.AsF64();
  }
  if (c.args.size() > 3) {
    BRIDGECL_ASSIGN_OR_RETURN(Value cz, Eval(*c.args[3]));
    fz = cz.AsF64();
  }
  if (d.sampler_bits & kSamplerNormalizedCoords) {
    fx *= d.width;
    fy *= d.height;
    fz *= d.depth;
  }
  ScalarKind fetch_kind =
      IsFloatScalar(out_kind) ? ScalarKind::kFloat : out_kind;
  BRIDGECL_ASSIGN_OR_RETURN(
      Value texel, ReadTexel(d, static_cast<int>(fx), static_cast<int>(fy),
                             static_cast<int>(fz), fetch_kind));
  if (out_width == 1) return texel.Component(0).ConvertTo(Type::Scalar(out_kind));
  std::vector<ScalarVal> comps(out_width);
  for (int i = 0; i < out_width; ++i)
    comps[i] = texel.Component(i).ConvertTo(Type::Scalar(out_kind)).scalar();
  return Value::Vector(Type::Vector(out_kind, out_width), std::move(comps));
}

StatusOr<Value> Evaluator::EvalAtomic(const std::string& name,
                                      const CallExpr& c) {
  if (c.args.empty()) return Err(name + ": missing pointer argument");
  BRIDGECL_ASSIGN_OR_RETURN(Value ptr, Eval(*c.args[0]));
  Type::Ptr elem = ptr.type() && ptr.type()->is_pointer()
                       ? ptr.type()->pointee()
                       : Type::IntTy();
  uint64_t va = ptr.AsVa();
  ++L_.stats->atomics;
  cycles_ += L_.device->profile().cost_atomic;
  BRIDGECL_ASSIGN_OR_RETURN(Value old, LoadMem(va, elem));
  Value operand;
  if (c.args.size() > 1) {
    BRIDGECL_ASSIGN_OR_RETURN(operand, Eval(*c.args[1]));
    operand = operand.ConvertTo(elem);
  }
  Value next = old;
  bool flt = elem->is_float();
  // OpenCL atomic_inc/atomic_dec: unconditional +-1 (no operand).
  // CUDA atomicInc/atomicDec: wrap semantics against args[1] (§3.7).
  if (name == "atomic_inc" || name == "atom_inc") {
    next = Value::Int(old.AsI64() + 1, elem->scalar_kind());
  } else if (name == "atomic_dec" || name == "atom_dec") {
    next = Value::Int(old.AsI64() - 1, elem->scalar_kind());
  } else if (name == "atomicInc") {
    uint64_t limit = operand.AsU64();
    next = Value::UInt(old.AsU64() >= limit ? 0 : old.AsU64() + 1,
                       elem->scalar_kind());
  } else if (name == "atomicDec") {
    uint64_t limit = operand.AsU64();
    uint64_t ov = old.AsU64();
    next = Value::UInt((ov == 0 || ov > limit) ? limit : ov - 1,
                       elem->scalar_kind());
  } else if (name == "atomic_add" || name == "atomicAdd" ||
             name == "atom_add") {
    next = flt ? Value::Float(old.AsF64() + operand.AsF64(),
                              elem->scalar_kind())
               : Value::Int(old.AsI64() + operand.AsI64(),
                            elem->scalar_kind());
  } else if (name == "atomic_sub" || name == "atomicSub") {
    next = Value::Int(old.AsI64() - operand.AsI64(), elem->scalar_kind());
  } else if (name == "atomic_xchg" || name == "atomicExch") {
    next = operand;
  } else if (name == "atomic_min" || name == "atomicMin") {
    bool less = IsSignedScalar(elem->scalar_kind())
                    ? operand.AsI64() < old.AsI64()
                    : operand.AsU64() < old.AsU64();
    if (flt) less = operand.AsF64() < old.AsF64();
    next = less ? operand : old;
  } else if (name == "atomic_max" || name == "atomicMax") {
    bool greater = IsSignedScalar(elem->scalar_kind())
                       ? operand.AsI64() > old.AsI64()
                       : operand.AsU64() > old.AsU64();
    if (flt) greater = operand.AsF64() > old.AsF64();
    next = greater ? operand : old;
  } else if (name == "atomic_and" || name == "atomicAnd") {
    next = Value::UInt(old.AsU64() & operand.AsU64(), elem->scalar_kind());
  } else if (name == "atomic_or" || name == "atomicOr") {
    next = Value::UInt(old.AsU64() | operand.AsU64(), elem->scalar_kind());
  } else if (name == "atomic_xor" || name == "atomicXor") {
    next = Value::UInt(old.AsU64() ^ operand.AsU64(), elem->scalar_kind());
  } else if (name == "atomic_cmpxchg" || name == "atomicCAS") {
    if (c.args.size() != 3) return Err(name + ": expected 3 arguments");
    BRIDGECL_ASSIGN_OR_RETURN(Value desired, Eval(*c.args[2]));
    if (old.AsU64() == operand.AsU64()) {
      next = desired.ConvertTo(elem);
    }
  } else {
    return Err("unhandled atomic builtin '" + name + "'");
  }
  BRIDGECL_RETURN_IF_ERROR(StoreMem(va, next.ConvertTo(elem)));
  return old;
}

StatusOr<Value> Evaluator::CallBuiltin(const std::string& raw_name,
                                       const CallExpr& c) {
  // Device-side wrapper-library functions (__oc2cu_*) behave exactly like
  // the OpenCL builtin they wrap (Â§5).
  const std::string name =
      StartsWith(raw_name, "__oc2cu_") ? raw_name.substr(8) : raw_name;
  const auto& prof = L_.device->profile();

  // ---- work-item functions (OpenCL) ----
  auto dim_arg = [&]() -> StatusOr<int> {
    if (c.args.empty()) return 0;
    BRIDGECL_ASSIGN_OR_RETURN(Value d, Eval(*c.args[0]));
    return static_cast<int>(d.AsI64());
  };
  if (name == "get_global_id") {
    BRIDGECL_ASSIGN_OR_RETURN(int d, dim_arg());
    return Value::UInt(gid_[d], ScalarKind::kSizeT);
  }
  if (name == "get_local_id") {
    BRIDGECL_ASSIGN_OR_RETURN(int d, dim_arg());
    return Value::UInt(lid_[d], ScalarKind::kSizeT);
  }
  if (name == "get_group_id") {
    BRIDGECL_ASSIGN_OR_RETURN(int d, dim_arg());
    return Value::UInt(L_.group_id[d], ScalarKind::kSizeT);
  }
  if (name == "get_global_size") {
    BRIDGECL_ASSIGN_OR_RETURN(int d, dim_arg());
    return Value::UInt(
        static_cast<uint64_t>(L_.cfg.grid[d]) * L_.cfg.block[d],
        ScalarKind::kSizeT);
  }
  if (name == "get_local_size") {
    BRIDGECL_ASSIGN_OR_RETURN(int d, dim_arg());
    return Value::UInt(L_.cfg.block[d], ScalarKind::kSizeT);
  }
  if (name == "get_num_groups") {
    BRIDGECL_ASSIGN_OR_RETURN(int d, dim_arg());
    return Value::UInt(L_.cfg.grid[d], ScalarKind::kSizeT);
  }
  if (name == "get_work_dim") return Value::UInt(3);
  if (name == "get_global_offset") return Value::UInt(0, ScalarKind::kSizeT);

  // ---- synchronization ----
  if (name == "barrier" || name == "__syncthreads") {
    for (const auto& a : c.args) BRIDGECL_RETURN_IF_ERROR(Eval(*a).status());
    ++L_.stats->barriers;
    cycles_ += prof.cost_barrier;
    L_.group->Barrier();
    return Value::Void();
  }
  if (name == "mem_fence" || name == "read_mem_fence" ||
      name == "write_mem_fence" || name == "__threadfence" ||
      name == "__threadfence_block") {
    for (const auto& a : c.args) BRIDGECL_RETURN_IF_ERROR(Eval(*a).status());
    cycles_ += prof.cost_alu;
    return Value::Void();
  }

  // ---- images / textures ----
  if (StartsWith(name, "read_image")) return EvalImageRead(name, c);
  if (StartsWith(name, "write_image")) return EvalImageWrite(name, c);
  if (StartsWith(name, "tex")) return EvalTexFetch(name, c);
  if (name == "get_image_width" || name == "get_image_height") {
    BRIDGECL_ASSIGN_OR_RETURN(Value img, Eval(*c.args[0]));
    BRIDGECL_ASSIGN_OR_RETURN(ImageDesc d, LoadImageDesc(img.AsVa()));
    return Value::Int(name == "get_image_width" ? d.width : d.height);
  }

  // ---- atomics ----
  if (StartsWith(name, "atomic_") || StartsWith(name, "atom_") ||
      StartsWith(name, "atomic"))
    return EvalAtomic(name, c);

  // ---- vector family ----
  if (StartsWith(name, "make_")) {
    ScalarKind ek;
    int w;
    if (!lang::ParseVectorTypeName(name.substr(5), &ek, &w))
      return Err("bad make_* builtin '" + name + "'");
    std::vector<ScalarVal> comps(w);
    for (int i = 0; i < w && i < static_cast<int>(c.args.size()); ++i) {
      BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c.args[i]));
      comps[i] = v.ConvertTo(Type::Scalar(ek)).scalar();
    }
    ChargeOp(prof.cost_alu);
    return Value::Vector(Type::Vector(ek, w), std::move(comps));
  }
  if (StartsWith(name, "convert_")) {
    BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c.args[0]));
    ScalarKind ek;
    int w;
    std::string rest = name.substr(8);
    ChargeOp(prof.cost_alu);
    if (lang::ParseVectorTypeName(rest, &ek, &w))
      return v.ConvertTo(Type::Vector(ek, w));
    // Scalar convert_T.
    for (ScalarKind k :
         {ScalarKind::kChar, ScalarKind::kUChar, ScalarKind::kShort,
          ScalarKind::kUShort, ScalarKind::kInt, ScalarKind::kUInt,
          ScalarKind::kLong, ScalarKind::kULong, ScalarKind::kFloat,
          ScalarKind::kDouble}) {
      if (rest == lang::ScalarName(k)) return v.ConvertTo(Type::Scalar(k));
    }
    return Err("bad convert_* builtin '" + name + "'");
  }
  if (StartsWith(name, "as_")) {
    BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c.args[0]));
    ScalarKind ek;
    int w;
    std::string rest = name.substr(3);
    if (lang::ParseVectorTypeName(rest, &ek, &w))
      return v.BitcastTo(Type::Vector(ek, w));
    for (ScalarKind k :
         {ScalarKind::kInt, ScalarKind::kUInt, ScalarKind::kFloat,
          ScalarKind::kLong, ScalarKind::kULong, ScalarKind::kDouble}) {
      if (rest == lang::ScalarName(k)) return v.BitcastTo(Type::Scalar(k));
    }
    return Err("bad as_* builtin '" + name + "'");
  }
  if (StartsWith(name, "vload")) {
    int w = std::atoi(name.c_str() + 5);
    BRIDGECL_ASSIGN_OR_RETURN(Value off, Eval(*c.args[0]));
    BRIDGECL_ASSIGN_OR_RETURN(Value ptr, Eval(*c.args[1]));
    Type::Ptr elem = ptr.type()->is_pointer() ? ptr.type()->pointee()
                                              : Type::FloatTy();
    Type::Ptr vt = Type::Vector(elem->scalar_kind(), w);
    uint64_t va = ptr.AsVa() + off.AsU64() * w * elem->ByteSize();
    // vload reads w packed elements (no vec3 padding).
    std::vector<ScalarVal> comps(w);
    for (int i = 0; i < w; ++i) {
      BRIDGECL_ASSIGN_OR_RETURN(Value v,
                                LoadMem(va + i * elem->ByteSize(), elem));
      comps[i] = v.scalar();
    }
    return Value::Vector(vt, std::move(comps));
  }
  if (StartsWith(name, "vstore")) {
    int w = std::atoi(name.c_str() + 6);
    BRIDGECL_ASSIGN_OR_RETURN(Value data, Eval(*c.args[0]));
    BRIDGECL_ASSIGN_OR_RETURN(Value off, Eval(*c.args[1]));
    BRIDGECL_ASSIGN_OR_RETURN(Value ptr, Eval(*c.args[2]));
    Type::Ptr elem = ptr.type()->is_pointer() ? ptr.type()->pointee()
                                              : Type::FloatTy();
    uint64_t va = ptr.AsVa() + off.AsU64() * w * elem->ByteSize();
    for (int i = 0; i < w; ++i) {
      BRIDGECL_RETURN_IF_ERROR(StoreMem(
          va + i * elem->ByteSize(), data.Component(i).ConvertTo(elem)));
    }
    return Value::Void();
  }

  // ---- warp-level CUDA built-ins: degenerate single-lane semantics.
  // These exist so that mcuda can *run* CUDA-only samples natively; the
  // CU→CL translator rejects them (§3.7 / Table 3).
  if (name == "__shfl" || name == "__shfl_up" || name == "__shfl_down" ||
      name == "__shfl_xor") {
    BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c.args[0]));
    for (size_t i = 1; i < c.args.size(); ++i)
      BRIDGECL_RETURN_IF_ERROR(Eval(*c.args[i]).status());
    ChargeOp(prof.cost_alu);
    return v;
  }
  if (name == "__all" || name == "__any") {
    BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c.args[0]));
    ChargeOp(prof.cost_alu);
    return Value::Int(v.AsBool() ? 1 : 0);
  }
  if (name == "__ballot") {
    BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c.args[0]));
    ChargeOp(prof.cost_alu);
    return Value::UInt(v.AsBool() ? 1u : 0u);
  }
  if (name == "clock")
    return Value::Int(static_cast<int64_t>(cycles_));
  if (name == "clock64")
    return Value::Int(static_cast<int64_t>(cycles_), ScalarKind::kLongLong);
  if (name == "assert") {
    BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*c.args[0]));
    if (!v.AsBool()) return Err("device-side assert failed");
    return Value::Void();
  }
  if (name == "printf") {
    // Arguments are evaluated for side effects; output is suppressed in
    // the simulator (matches running with stdout redirected).
    for (const auto& a : c.args) BRIDGECL_RETURN_IF_ERROR(Eval(*a).status());
    return Value::Int(0);
  }

  // ---- math & integer builtins (elementwise over vectors) ----
  std::vector<Value> args;
  args.reserve(c.args.size());
  for (const auto& a : c.args) {
    BRIDGECL_ASSIGN_OR_RETURN(Value v, Eval(*a));
    args.push_back(std::move(v));
  }
  auto math1 = [&](double (*fn)(double)) -> StatusOr<Value> {
    cycles_ += prof.cost_math;
    const Value& a = args[0];
    bool is_float_res =
        (name.back() == 'f' && L_.dialect == Dialect::kCUDA) ||
        (a.type() && (a.type()->is_vector() || a.type()->is_scalar()) &&
         a.type()->scalar_kind() == ScalarKind::kFloat);
    ScalarKind k = is_float_res ? ScalarKind::kFloat : ScalarKind::kDouble;
    if (a.is_vector()) {
      Value out = a;
      for (auto& cmp : out.comps()) {
        double x = IsFloatScalar(a.type()->scalar_kind())
                       ? cmp.f
                       : static_cast<double>(cmp.i);
        cmp.f = k == ScalarKind::kFloat ? static_cast<float>(fn(x)) : fn(x);
      }
      out.set_type(Type::Vector(k, a.type()->vector_width()));
      return out;
    }
    return Value::Float(fn(a.AsF64()), k);
  };
  auto math2 = [&](double (*fn)(double, double)) -> StatusOr<Value> {
    cycles_ += prof.cost_math;
    const Value& a = args[0];
    const Value& b = args[1];
    bool use_float =
        (name.back() == 'f' && L_.dialect == Dialect::kCUDA) ||
        (a.type() && a.type()->scalar_kind() == ScalarKind::kFloat);
    ScalarKind k = use_float ? ScalarKind::kFloat : ScalarKind::kDouble;
    if (a.is_vector()) {
      int w = a.type()->vector_width();
      Value bb = b.ConvertTo(Type::Vector(k, w));
      Value out = a.ConvertTo(Type::Vector(k, w));
      for (int i = 0; i < w; ++i)
        out.comps()[i].f = fn(out.comps()[i].f, bb.comps()[i].f);
      return out;
    }
    return Value::Float(fn(a.AsF64(), b.AsF64()), k);
  };

  static const std::unordered_map<std::string, double (*)(double)> kMath1 = {
      {"sqrt", std::sqrt},   {"sqrtf", std::sqrt},
      {"native_sqrt", std::sqrt}, {"half_sqrt", std::sqrt},
      {"rsqrt", +[](double x) { return 1.0 / std::sqrt(x); }},
      {"rsqrtf", +[](double x) { return 1.0 / std::sqrt(x); }},
      {"native_rsqrt", +[](double x) { return 1.0 / std::sqrt(x); }},
      {"cbrt", std::cbrt},
      {"exp", std::exp},     {"expf", std::exp},
      {"__expf", std::exp},  {"native_exp", std::exp},
      {"exp2", std::exp2},   {"exp2f", std::exp2},
      {"log", std::log},     {"logf", std::log},
      {"__logf", std::log},  {"native_log", std::log},
      {"log2", std::log2},   {"log2f", std::log2},
      {"log10", std::log10}, {"log10f", std::log10},
      {"sin", std::sin},     {"sinf", std::sin},
      {"__sinf", std::sin},  {"native_sin", std::sin},
      {"cos", std::cos},     {"cosf", std::cos},
      {"__cosf", std::cos},  {"native_cos", std::cos},
      {"tan", std::tan},     {"tanf", std::tan},
      {"asin", std::asin},   {"asinf", std::asin},
      {"acos", std::acos},   {"acosf", std::acos},
      {"atan", std::atan},   {"atanf", std::atan},
      {"sinh", std::sinh},   {"cosh", std::cosh},
      {"tanh", std::tanh},
      {"fabs", std::fabs},   {"fabsf", std::fabs},
      {"floor", std::floor}, {"floorf", std::floor},
      {"ceil", std::ceil},   {"ceilf", std::ceil},
      {"trunc", std::trunc}, {"round", std::round},
  };
  if (auto it = kMath1.find(name); it != kMath1.end()) return math1(it->second);

  static const std::unordered_map<std::string, double (*)(double, double)>
      kMath2 = {
          {"pow", std::pow},     {"powf", std::pow},
          {"fmod", std::fmod},   {"fmodf", std::fmod},
          {"atan2", std::atan2}, {"atan2f", std::atan2},
          {"fmin", std::fmin},   {"fminf", std::fmin},
          {"fmax", std::fmax},   {"fmaxf", std::fmax},
          {"native_divide", +[](double a, double b) { return a / b; }},
          {"__fdividef", +[](double a, double b) { return a / b; }},
      };
  if (auto it = kMath2.find(name); it != kMath2.end()) return math2(it->second);

  if (name == "fma" || name == "fmaf" || name == "mad") {
    cycles_ += prof.cost_alu;
    if (args[0].is_vector()) {
      Type::Ptr vt = args[0].type();
      Value a = args[0], b = args[1].ConvertTo(vt), d = args[2].ConvertTo(vt);
      Value out = a;
      for (int i = 0; i < vt->vector_width(); ++i)
        out.comps()[i].f =
            a.comps()[i].f * b.comps()[i].f + d.comps()[i].f;
      return out;
    }
    ScalarKind k = args[0].type() &&
                           args[0].type()->scalar_kind() == ScalarKind::kFloat
                       ? ScalarKind::kFloat
                       : ScalarKind::kDouble;
    return Value::Float(args[0].AsF64() * args[1].AsF64() + args[2].AsF64(),
                        k);
  }
  if (name == "min" || name == "max") {
    ChargeOp(prof.cost_alu);
    const Value& a = args[0];
    const Value& b = args[1];
    bool take_a;
    if (a.type() && (a.type()->is_float() ||
                     (b.type() && b.type()->is_float()))) {
      take_a = name == "min" ? a.AsF64() <= b.AsF64() : a.AsF64() >= b.AsF64();
    } else if (a.type() && !IsSignedScalar(a.type()->scalar_kind())) {
      take_a = name == "min" ? a.AsU64() <= b.AsU64() : a.AsU64() >= b.AsU64();
    } else {
      take_a = name == "min" ? a.AsI64() <= b.AsI64() : a.AsI64() >= b.AsI64();
    }
    return take_a ? a : b;
  }
  if (name == "abs") {
    ChargeOp(prof.cost_alu);
    return Value::Int(std::llabs(args[0].AsI64()),
                      args[0].type() ? args[0].type()->scalar_kind()
                                     : ScalarKind::kInt);
  }
  if (name == "clamp") {
    ChargeOp(prof.cost_alu);
    if (args[0].type() && args[0].type()->is_float()) {
      double v = args[0].AsF64(), lo = args[1].AsF64(), hi = args[2].AsF64();
      return Value::Float(v < lo ? lo : (v > hi ? hi : v),
                          args[0].type()->scalar_kind());
    }
    int64_t v = args[0].AsI64(), lo = args[1].AsI64(), hi = args[2].AsI64();
    return Value::Int(v < lo ? lo : (v > hi ? hi : v));
  }
  if (name == "select") {
    // OpenCL select(a, b, c): c chooses b (per-component MSB for vectors).
    ChargeOp(prof.cost_alu);
    const Value& a = args[0];
    const Value& b = args[1];
    const Value& c = args[2];
    if (a.is_vector()) {
      Value out = a;
      for (int i = 0; i < a.type()->vector_width(); ++i) {
        bool take_b = c.is_vector() ? (c.comps()[i].i < 0)
                                    : c.AsBool();
        if (take_b)
          out.comps()[i] = i < static_cast<int>(b.comps().size())
                               ? b.comps()[i]
                               : ScalarVal{};
      }
      return out;
    }
    return c.AsBool() ? b : a;
  }
  if (name == "mix") {
    cycles_ += prof.cost_alu;
    double a = args[0].AsF64(), b = args[1].AsF64(), t = args[2].AsF64();
    return Value::Float(a + (b - a) * t,
                        args[0].type() ? args[0].type()->scalar_kind()
                                       : ScalarKind::kFloat);
  }
  if (name == "mul24" || name == "__mul24") {
    ChargeOp(prof.cost_alu);
    return Value::Int((args[0].AsI64() & 0xFFFFFF) *
                      (args[1].AsI64() & 0xFFFFFF));
  }
  if (name == "__popc" || name == "popcount") {
    ChargeOp(prof.cost_alu);
    return Value::Int(__builtin_popcountll(args[0].AsU64()));
  }
  if (name == "__clz" || name == "clz") {
    ChargeOp(prof.cost_alu);
    uint32_t v = static_cast<uint32_t>(args[0].AsU64());
    return Value::Int(v == 0 ? 32 : __builtin_clz(v));
  }

  return Err("unimplemented builtin '" + name + "' in " +
             std::string(lang::DialectName(L_.dialect)) + " device code");
}

// ---------------------------------------------------------------------------
// Block-parallel grid scheduler support
// ---------------------------------------------------------------------------

/// Mirror of CallBuiltin's atomic dispatch predicate (including the
/// __oc2cu_ wrapper-prefix strip). Kernels that reach an atomic builtin
/// are executed serially: EvalAtomic models the op as a non-atomic
/// read-modify-write whose cross-block interleaving (and returned old
/// values) would otherwise depend on worker scheduling.
bool IsAtomicBuiltinName(const std::string& raw_name) {
  const std::string name =
      StartsWith(raw_name, "__oc2cu_") ? raw_name.substr(8) : raw_name;
  return StartsWith(name, "atomic_") || StartsWith(name, "atom_") ||
         StartsWith(name, "atomic");
}

/// What a kernel may do to global memory, attributed to the kernel
/// parameter each access flows from. The serial engine runs blocks in
/// canonical order, so a kernel that *reads* a buffer another block
/// *writes* in the same launch (srad2's in-place stencil, nw's in-place
/// wavefront) observes that order; such launches must stay serial for the
/// parallel engine to be bit-identical. Stores to a buffer no block
/// reads are assumed block-disjoint, as data-race-free kernels on real
/// devices are.
struct GlobalAccessSummary {
  uint64_t load_params = 0;   // bit i: loaded through kernel param i
  uint64_t store_params = 0;  // bit i: stored through kernel param i
  bool unknown_load = false;  // global load of unattributable provenance
  bool unknown_store = false;
  bool uses_atomics = false;
};

/// Which kernel parameters a pointer value may be derived from.
struct Prov {
  uint64_t mask = 0;     // bit i: possibly derived from kernel param i
  bool unknown = false;  // possibly derived from something else entirely
};

Prov UnionProv(Prov a, const Prov& b) {
  a.mask |= b.mask;
  a.unknown |= b.unknown;
  return a;
}

/// Flow-insensitive, inlining, address-taken-conservative scan of a
/// kernel's global memory accesses. Local pointer variables accumulate
/// the provenance of everything assigned to them (fixpoint over the
/// body); pointers loaded from memory or returned by calls are unknown.
class HazardScanner {
 public:
  GlobalAccessSummary Analyze(const FunctionDecl* kernel) {
    std::vector<Prov> params(kernel->params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      if (i < 64)
        params[i].mask = 1ull << i;
      else
        params[i].unknown = true;
    }
    ScanFunction(kernel, std::move(params));
    return sum_;
  }

 private:
  using Env = std::unordered_map<const VarDecl*, Prov>;

  GlobalAccessSummary sum_;
  std::vector<const FunctionDecl*> call_stack_;
  bool record_ = false;   // accesses recorded only on the settled pass
  bool changed_ = false;  // an env entry grew this pass

  void ScanFunction(const FunctionDecl* fn, std::vector<Prov> param_prov) {
    if (std::find(call_stack_.begin(), call_stack_.end(), fn) !=
        call_stack_.end()) {
      // Recursive cycle: give up on attribution.
      sum_.unknown_load = sum_.unknown_store = true;
      return;
    }
    call_stack_.push_back(fn);
    Env env;
    for (size_t i = 0; i < fn->params.size() && i < param_prov.size(); ++i)
      env[fn->params[i].get()] = param_prov[i];
    bool outer_record = record_;
    // Propagate provenance through local pointer vars to a fixpoint
    // without recording, then one recording pass.
    record_ = false;
    for (int round = 0; round < 4; ++round) {
      changed_ = false;
      ScanStmt(fn->body.get(), env);
      if (!changed_) break;
    }
    record_ = true;
    ScanStmt(fn->body.get(), env);
    record_ = outer_record;
    call_stack_.pop_back();
  }

  void Bind(Env& env, const VarDecl* var, const Prov& p) {
    Prov& slot = env[var];
    Prov merged = UnionProv(slot, p);
    if (merged.mask != slot.mask || merged.unknown != slot.unknown) {
      slot = merged;
      changed_ = true;
    }
  }

  static bool IsPointer(const Expr* e) {
    return e != nullptr && e->type != nullptr && e->type->is_pointer();
  }

  void Record(const Expr* ptr, Env& env, bool load, bool store) {
    if (!record_ || !IsPointer(ptr)) return;
    AddressSpace space = ptr->type->pointee_space();
    // Local memory is per-slot, constant is read-only: neither can carry
    // cross-block dependences.
    if (space == AddressSpace::kLocal || space == AddressSpace::kConstant)
      return;
    Prov p = ProvOf(ptr, env);
    if (space != AddressSpace::kGlobal && p.mask == 0 && !p.unknown)
      return;  // provably private (e.g. &stack_var)
    if (load) {
      sum_.load_params |= p.mask;
      sum_.unknown_load |= p.unknown;
    }
    if (store) {
      sum_.store_params |= p.mask;
      sum_.unknown_store |= p.unknown;
    }
  }

  /// Provenance of the address of lvalue `e` (for &lvalue).
  Prov ProvOfLvalueBase(const Expr* e, Env& env) {
    if (e == nullptr) return {};
    switch (e->kind) {
      case ExprKind::kIndex:
        return ProvOf(e->As<IndexExpr>()->base.get(), env);
      case ExprKind::kMember: {
        const auto* m = e->As<MemberExpr>();
        return m->is_arrow ? ProvOf(m->base.get(), env)
                           : ProvOfLvalueBase(m->base.get(), env);
      }
      case ExprKind::kUnary: {
        const auto* u = e->As<UnaryExpr>();
        if (u->op == UnaryOp::kDeref) return ProvOf(u->operand.get(), env);
        return ProvOfLvalueBase(u->operand.get(), env);
      }
      case ExprKind::kParen:
        return ProvOfLvalueBase(e->As<ParenExpr>()->inner.get(), env);
      case ExprKind::kCast:
        return ProvOfLvalueBase(e->As<CastExpr>()->operand.get(), env);
      case ExprKind::kDeclRef: {
        const auto* r = e->As<DeclRefExpr>();
        // &local_scalar / &local_array: provably private. Taking the
        // address of a tracked pointer defeats tracking -> poison it.
        if (r->var != nullptr && IsPointer(e)) Bind(env, r->var, {0, true});
        return {};
      }
      default:
        return {0, true};
    }
  }

  Prov ProvOf(const Expr* e, Env& env) {
    if (e == nullptr) return {};
    switch (e->kind) {
      case ExprKind::kDeclRef: {
        const auto* r = e->As<DeclRefExpr>();
        if (r->var == nullptr) return IsPointer(e) ? Prov{0, true} : Prov{};
        auto it = env.find(r->var);
        if (it != env.end()) return it->second;
        // Not a local of this function: a module-scope pointer, or a
        // first-pass use before its decl has been scanned.
        return IsPointer(e) ? Prov{0, true} : Prov{};
      }
      case ExprKind::kUnary: {
        const auto* u = e->As<UnaryExpr>();
        if (u->op == UnaryOp::kAddrOf)
          return ProvOfLvalueBase(u->operand.get(), env);
        if (u->op == UnaryOp::kDeref)
          return IsPointer(e) ? Prov{0, true} : Prov{};
        return ProvOf(u->operand.get(), env);
      }
      case ExprKind::kBinary: {
        const auto* b = e->As<BinaryExpr>();
        return UnionProv(ProvOf(b->lhs.get(), env),
                         ProvOf(b->rhs.get(), env));
      }
      case ExprKind::kAssign:
        return ProvOf(e->As<AssignExpr>()->rhs.get(), env);
      case ExprKind::kConditional: {
        const auto* c = e->As<ConditionalExpr>();
        return UnionProv(ProvOf(c->then_expr.get(), env),
                         ProvOf(c->else_expr.get(), env));
      }
      case ExprKind::kParen:
        return ProvOf(e->As<ParenExpr>()->inner.get(), env);
      case ExprKind::kCast:
        return ProvOf(e->As<CastExpr>()->operand.get(), env);
      case ExprKind::kIndex:
      case ExprKind::kMember:
      case ExprKind::kCall:
        // Pointer values produced by a memory load or a call are
        // unattributable.
        return IsPointer(e) ? Prov{0, true} : Prov{};
      default:
        return {};
    }
  }

  /// Scan `e` in store position. `load_too` for compound assigns and
  /// increments, which read-modify-write the location.
  void ScanLvalue(const Expr* e, Env& env, bool load_too) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::kIndex: {
        const auto* i = e->As<IndexExpr>();
        ScanExpr(i->index.get(), env);
        if (IsPointer(i->base.get())) {
          ScanExpr(i->base.get(), env);
          Record(i->base.get(), env, load_too, /*store=*/true);
        } else {
          // Element of an aggregate lvalue (local array or p->arr[i]).
          ScanLvalue(i->base.get(), env, load_too);
        }
        return;
      }
      case ExprKind::kMember: {
        const auto* m = e->As<MemberExpr>();
        if (m->is_arrow) {
          ScanExpr(m->base.get(), env);
          Record(m->base.get(), env, load_too, /*store=*/true);
        } else {
          ScanLvalue(m->base.get(), env, load_too);
        }
        return;
      }
      case ExprKind::kUnary: {
        const auto* u = e->As<UnaryExpr>();
        if (u->op == UnaryOp::kDeref) {
          ScanExpr(u->operand.get(), env);
          Record(u->operand.get(), env, load_too, /*store=*/true);
          return;
        }
        ScanLvalue(u->operand.get(), env, load_too);
        return;
      }
      case ExprKind::kParen:
        ScanLvalue(e->As<ParenExpr>()->inner.get(), env, load_too);
        return;
      case ExprKind::kCast:
        ScanLvalue(e->As<CastExpr>()->operand.get(), env, load_too);
        return;
      case ExprKind::kDeclRef:
        return;  // plain local: no memory traffic
      default:
        ScanExpr(e, env);
        return;
    }
  }

  /// Strip parens/casts down to a DeclRef, or null.
  static const DeclRefExpr* AsDeclRef(const Expr* e) {
    while (e != nullptr) {
      if (e->kind == ExprKind::kDeclRef) return e->As<DeclRefExpr>();
      if (e->kind == ExprKind::kParen)
        e = e->As<ParenExpr>()->inner.get();
      else if (e->kind == ExprKind::kCast)
        e = e->As<CastExpr>()->operand.get();
      else
        return nullptr;
    }
    return nullptr;
  }

  void ScanExpr(const Expr* e, Env& env) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::kAssign: {
        const auto* a = e->As<AssignExpr>();
        ScanExpr(a->rhs.get(), env);
        if (const DeclRefExpr* r = AsDeclRef(a->lhs.get());
            r != nullptr && r->var != nullptr && IsPointer(a->lhs.get())) {
          // Pointer reseated: fold the source's provenance into the var.
          Bind(env, r->var, a->compound ? Prov{0, true}
                                        : ProvOf(a->rhs.get(), env));
          return;
        }
        ScanLvalue(a->lhs.get(), env, /*load_too=*/a->compound);
        return;
      }
      case ExprKind::kUnary: {
        const auto* u = e->As<UnaryExpr>();
        switch (u->op) {
          case UnaryOp::kDeref:
            ScanExpr(u->operand.get(), env);
            Record(u->operand.get(), env, /*load=*/true, /*store=*/false);
            return;
          case UnaryOp::kPreInc:
          case UnaryOp::kPreDec:
          case UnaryOp::kPostInc:
          case UnaryOp::kPostDec:
            if (AsDeclRef(u->operand.get()) == nullptr)
              ScanLvalue(u->operand.get(), env, /*load_too=*/true);
            else
              ScanExpr(u->operand.get(), env);
            return;
          case UnaryOp::kAddrOf:
            (void)ProvOfLvalueBase(u->operand.get(), env);  // escape check
            return;
          default:
            ScanExpr(u->operand.get(), env);
            return;
        }
      }
      case ExprKind::kBinary: {
        const auto* b = e->As<BinaryExpr>();
        ScanExpr(b->lhs.get(), env);
        ScanExpr(b->rhs.get(), env);
        return;
      }
      case ExprKind::kConditional: {
        const auto* c = e->As<ConditionalExpr>();
        ScanExpr(c->cond.get(), env);
        ScanExpr(c->then_expr.get(), env);
        ScanExpr(c->else_expr.get(), env);
        return;
      }
      case ExprKind::kIndex: {
        const auto* i = e->As<IndexExpr>();
        ScanExpr(i->base.get(), env);
        ScanExpr(i->index.get(), env);
        if (IsPointer(i->base.get()))
          Record(i->base.get(), env, /*load=*/true, /*store=*/false);
        return;
      }
      case ExprKind::kMember: {
        const auto* m = e->As<MemberExpr>();
        ScanExpr(m->base.get(), env);
        if (m->is_arrow)
          Record(m->base.get(), env, /*load=*/true, /*store=*/false);
        return;
      }
      case ExprKind::kCall: {
        const auto* c = e->As<CallExpr>();
        for (const auto& a : c->args) ScanExpr(a.get(), env);
        const DeclRefExpr* ref = AsDeclRef(c->callee.get());
        const FunctionDecl* fn =
            ref != nullptr && ref->function != nullptr &&
                    ref->function->body != nullptr
                ? ref->function
                : nullptr;
        if (fn != nullptr) {
          if (record_) {
            std::vector<Prov> callee_params(fn->params.size());
            for (size_t i = 0; i < fn->params.size() && i < c->args.size();
                 ++i)
              callee_params[i] = ProvOf(c->args[i].get(), env);
            ScanFunction(fn, std::move(callee_params));
          }
          return;
        }
        const std::string name = c->callee_name();
        if (IsAtomicBuiltinName(name)) sum_.uses_atomics = true;
        if (record_ && StartsWith(name, "write_image"))
          sum_.unknown_store = true;
        // Builtins taking pointers (vload/vstore, atomics, ...) may both
        // read and write through them.
        for (const auto& a : c->args)
          if (IsPointer(a.get()))
            Record(a.get(), env, /*load=*/true, /*store=*/true);
        return;
      }
      case ExprKind::kParen:
        ScanExpr(e->As<ParenExpr>()->inner.get(), env);
        return;
      case ExprKind::kCast:
        ScanExpr(e->As<CastExpr>()->operand.get(), env);
        return;
      case ExprKind::kInitList:
        for (const auto& el : e->As<InitListExpr>()->elems)
          ScanExpr(el.get(), env);
        return;
      case ExprKind::kVectorLit:
        for (const auto& el : e->As<VectorLitExpr>()->elems)
          ScanExpr(el.get(), env);
        return;
      case ExprKind::kSizeof:
        return;  // unevaluated operand
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kDeclRef:
      case ExprKind::kStringLit:
        return;
    }
  }

  void ScanStmt(const Stmt* s, Env& env) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::kCompound:
        for (const auto& st : s->As<CompoundStmt>()->body)
          ScanStmt(st.get(), env);
        return;
      case StmtKind::kDecl:
        for (const auto& v : s->As<DeclStmt>()->vars) {
          ScanExpr(v->init.get(), env);
          if (v->type != nullptr && v->type->is_pointer())
            Bind(env, v.get(), ProvOf(v->init.get(), env));
        }
        return;
      case StmtKind::kExpr:
        ScanExpr(s->As<ExprStmt>()->expr.get(), env);
        return;
      case StmtKind::kIf: {
        const auto* i = s->As<IfStmt>();
        ScanExpr(i->cond.get(), env);
        ScanStmt(i->then_stmt.get(), env);
        ScanStmt(i->else_stmt.get(), env);
        return;
      }
      case StmtKind::kFor: {
        const auto* f = s->As<ForStmt>();
        ScanStmt(f->init.get(), env);
        ScanExpr(f->cond.get(), env);
        ScanExpr(f->step.get(), env);
        ScanStmt(f->body.get(), env);
        return;
      }
      case StmtKind::kWhile: {
        const auto* w = s->As<WhileStmt>();
        ScanExpr(w->cond.get(), env);
        ScanStmt(w->body.get(), env);
        return;
      }
      case StmtKind::kDo: {
        const auto* d = s->As<lang::DoStmt>();
        ScanStmt(d->body.get(), env);
        ScanExpr(d->cond.get(), env);
        return;
      }
      case StmtKind::kReturn:
        ScanExpr(s->As<ReturnStmt>()->value.get(), env);
        return;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kEmpty:
        return;
    }
  }
};

GlobalAccessSummary AnalyzeKernelGlobalAccesses(const FunctionDecl* kernel) {
  return HazardScanner().Analyze(kernel);
}

/// Field-wise merge of a block's counter delta into the device totals.
/// Integer adds commute, but the reduction still runs in canonical block
/// order so a future non-commutative counter cannot silently diverge.
void AccumulateStats(simgpu::DeviceStats& into,
                     const simgpu::DeviceStats& d) {
  into.kernels_launched += d.kernels_launched;
  into.work_items_executed += d.work_items_executed;
  into.global_accesses += d.global_accesses;
  into.shared_accesses += d.shared_accesses;
  into.shared_bank_words += d.shared_bank_words;
  into.constant_accesses += d.constant_accesses;
  into.image_accesses += d.image_accesses;
  into.atomics += d.atomics;
  into.barriers += d.barriers;
  into.host_to_device_bytes += d.host_to_device_bytes;
  into.device_to_host_bytes += d.device_to_host_bytes;
  into.device_to_device_bytes += d.device_to_device_bytes;
  into.api_calls += d.api_calls;
  into.ops_executed += d.ops_executed;
}

std::atomic<int> g_worker_override{0};

}  // namespace

int WorkerCount() {
  int pinned = g_worker_override.load(std::memory_order_relaxed);
  if (pinned > 0) return pinned;
  static const int from_env = ResolveWorkerCountFromEnv();
  return from_env;
}

void SetWorkerCount(int workers) {
  if (workers > simgpu::VirtualMemory::kMaxWorkerSlots)
    workers = simgpu::VirtualMemory::kMaxWorkerSlots;
  g_worker_override.store(workers < 0 ? 0 : workers,
                          std::memory_order_relaxed);
}

StatusOr<LaunchResult> LaunchKernel(simgpu::Device& device, Module& module,
                                    const std::string& kernel_name,
                                    const LaunchConfig& config,
                                    std::span<const KernelArg> args) {
  const FunctionDecl* kernel = module.FindKernel(kernel_name);
  if (kernel == nullptr)
    return NotFoundError("no kernel named '" + kernel_name + "' in module");
  if (!module.loaded() || module.loaded_device() != &device)
    return FailedPreconditionError("module is not loaded on this device");
  const auto& prof = device.profile();
  if (config.block.Count() == 0 || config.grid.Count() == 0)
    return InvalidArgumentError("empty grid or block");
  if (config.block.Count() > static_cast<uint64_t>(prof.max_threads_per_block))
    return InvalidArgumentError(
        StrFormat("block size %llu exceeds device limit %d",
                  static_cast<unsigned long long>(config.block.Count()),
                  prof.max_threads_per_block));
  if (args.size() != kernel->params.size())
    return InvalidArgumentError(StrFormat(
        "kernel '%s' expects %zu arguments, got %zu", kernel_name.c_str(),
        kernel->params.size(), args.size()));

  LaunchState L;
  L.device = &device;
  L.module = &module;
  L.kernel = kernel;
  L.cfg = config;
  L.dialect = module.dialect();

  // ---- shared-memory layout: static __local vars, then dynamic-local
  // arguments (OpenCL §4.1), then the CUDA extern __shared__ area. ----
  std::vector<const VarDecl*> shared_vars;
  CollectSharedVars(kernel->body.get(), &shared_vars);
  size_t offset = 0;
  auto align_to = [&](size_t a) { offset = (offset + a - 1) / a * a; };
  for (const VarDecl* v : shared_vars) {
    if (v->quals.is_extern) continue;
    align_to(std::max<size_t>(v->type->Alignment(), 1));
    L.shared_va[v] = device.vm().shared_base() + offset;
    offset += v->type->ByteSize();
  }

  // ---- bind arguments ----
  L.arg_values.resize(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    const VarDecl* p = kernel->params[i].get();
    const KernelArg& a = args[i];
    if (a.kind == KernelArg::Kind::kLocalAlloc) {
      if (!p->type->is_pointer() ||
          p->type->pointee_space() != AddressSpace::kLocal)
        return InvalidArgumentError(StrFormat(
            "argument %zu: dynamic local allocation bound to a non-__local "
            "parameter of kernel '%s'",
            i, kernel_name.c_str()));
      align_to(16);
      uint64_t va = device.vm().shared_base() + offset;
      offset += a.local_size;
      L.arg_values[i] = Value::Pointer(va, p->type);
      L.local_arg_indices.push_back(i);
    } else {
      size_t want = p->type->ByteSize();
      if (p->type->is_named()) want = a.bytes.size();  // template param
      if (a.bytes.size() < want)
        return InvalidArgumentError(StrFormat(
            "argument %zu: %zu bytes provided, parameter '%s' needs %zu",
            i, a.bytes.size(), p->name.c_str(), want));
      Type::Ptr t = p->type->is_named() ? Type::IntTy() : p->type;
      BRIDGECL_ASSIGN_OR_RETURN(L.arg_values[i],
                                DecodeValue(t, a.bytes.data()));
    }
  }
  align_to(16);
  L.dynamic_shared_va = device.vm().shared_base() + offset;
  L.shared_total = offset + config.dynamic_shared_bytes;
  if (L.shared_total > prof.shared_mem_per_block)
    return ResourceExhaustedError(StrFormat(
        "kernel '%s' needs %zu bytes of shared memory per block; device "
        "provides %zu",
        kernel_name.c_str(), L.shared_total, prof.shared_mem_per_block));

  // ---- execute blocks on the worker pool ----
  // Blocks are independent in this model (no cross-block synchronization
  // primitive is exposed), so the grid is claimed block-by-block from an
  // atomic counter by `workers` host threads. Each worker executes into a
  // private VM slot and a private BlockResult; the reduction below then
  // replays the serial engine's bookkeeping in canonical block order, so
  // stats, cycle totals (flat FP fold), timestamps and traces are
  // bit-identical for every worker count.
  uint64_t block_items = config.block.Count();
  uint64_t total_blocks = config.grid.Count();
  int workers = WorkerCount();
  // Serialize when execution order is observable: an armed fault plan
  // counts per-site consults in execution order; atomics are modeled as
  // plain read-modify-writes; and a launch whose blocks read a buffer
  // other blocks write (in-place stencils like srad2, wavefronts like
  // nw) sees the serial engine's canonical block order through memory.
  if (workers > 1) {
    GlobalAccessSummary acc = AnalyzeKernelGlobalAccesses(kernel);
    if (std::getenv("BRIDGECL_DEBUG_HAZARD") != nullptr)
      fprintf(stderr,
              "[hazard] %s load=%llx store=%llx uload=%d ustore=%d atom=%d\n",
              kernel_name.c_str(),
              (unsigned long long)acc.load_params,
              (unsigned long long)acc.store_params, acc.unknown_load,
              acc.unknown_store, acc.uses_atomics);
    bool hazard = acc.uses_atomics || acc.unknown_store ||
                  (acc.unknown_load && acc.store_params != 0);
    if (!hazard && acc.store_params != 0) {
      // Attribute each accessed param to its underlying allocation; a
      // buffer both stored and loaded (same param, or two aliasing
      // params), or stored through two params, is a cross-block hazard.
      std::map<uint64_t, std::pair<int, int>> per_alloc;  // {stores, loads}
      for (size_t i = 0; i < L.arg_values.size() && i < 64; ++i) {
        uint64_t bit = 1ull << i;
        if (((acc.load_params | acc.store_params) & bit) == 0) continue;
        uint64_t va = L.arg_values[i].AsVa();
        uint64_t key = device.vm().GlobalAllocationBaseOf(va);
        if (key == 0) key = va;
        auto& [stores, loads] = per_alloc[key];
        if (acc.store_params & bit) ++stores;
        if (acc.load_params & bit) ++loads;
      }
      for (const auto& [base, sl] : per_alloc)
        if (sl.first > 0 && (sl.second > 0 || sl.first > 1)) hazard = true;
    }
    if (hazard) workers = 1;
  }
  if (device.faults().armed()) workers = 1;
  if (static_cast<uint64_t>(workers) > total_blocks)
    workers = static_cast<int>(total_blocks);
  device.vm().EnsureWorkerSlots(workers);

  struct BlockResult {
    simgpu::DeviceStats delta;
    std::vector<double> item_cycles;  // canonical per-item fold order
    Status status;
    bool executed = false;
  };
  std::vector<BlockResult> results(total_blocks);
  std::atomic<uint64_t> next_block{0};
  std::atomic<uint64_t> first_error_block{std::numeric_limits<uint64_t>::max()};

  auto run_worker = [&](int w) {
    // Per-worker launch state: same layout, rebased into VM slot `w`.
    LaunchState W = L;
    W.slot = w;
    uint64_t delta = device.vm().shared_base(w) - device.vm().shared_base(0);
    if (delta != 0) {
      for (auto& [var, va] : W.shared_va) va += delta;
      W.dynamic_shared_va += delta;
      for (size_t ai : W.local_arg_indices)
        W.arg_values[ai] = Value::Pointer(W.arg_values[ai].AsVa() + delta,
                                          kernel->params[ai]->type);
    }
    for (;;) {
      uint64_t b = next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= total_blocks) break;
      // Blocks past an already-failed one will be discarded by the
      // reduction; skip them instead of burning cycles.
      if (b > first_error_block.load(std::memory_order_acquire)) continue;
      BlockResult& r = results[b];
      r.executed = true;
      W.stats = &r.delta;
      // Per-block shared-memory mapping is an allocation event for the
      // fault plan (FaultSite::kSharedAlloc); only reachable serially.
      if (device.faults().armed()) {
        Status fs =
            device.faults().OnSharedAlloc(std::max<size_t>(W.shared_total, 1));
        if (!fs.ok()) {
          r.status = std::move(fs);
          uint64_t prev = first_error_block.load(std::memory_order_relaxed);
          while (b < prev && !first_error_block.compare_exchange_weak(
                                 prev, b, std::memory_order_release,
                                 std::memory_order_relaxed)) {
          }
          continue;
        }
      }
      device.vm().MapSharedSlot(w, std::max<size_t>(W.shared_total, 1));
      device.vm().MapPrivateSlot(
          w, static_cast<size_t>(block_items) * kPrivateBytesPerItem);
      simgpu::FiberGroup group(kFiberStackBytes);
      W.group = &group;
      W.group_id = Dim3(static_cast<uint32_t>(b % config.grid.x),
                        static_cast<uint32_t>((b / config.grid.x) %
                                              config.grid.y),
                        static_cast<uint32_t>(b / (uint64_t{config.grid.x} *
                                                   config.grid.y)));
      std::vector<std::unique_ptr<Evaluator>> evals(block_items);
      Status st =
          group.Run(static_cast<int>(block_items), [&](int idx) -> Status {
            Dim3 lid(idx % config.block.x,
                     (idx / config.block.x) % config.block.y,
                     idx / (config.block.x * config.block.y));
            evals[idx] = std::make_unique<Evaluator>(W, lid, idx);
            return evals[idx]->Run();
          });
      r.item_cycles.assign(block_items, 0.0);
      for (uint64_t i = 0; i < block_items; ++i)
        if (evals[i]) r.item_cycles[i] = evals[i]->TakeCycles();
      if (!st.ok()) {
        r.status = std::move(st);
        uint64_t prev = first_error_block.load(std::memory_order_relaxed);
        while (b < prev &&
               !first_error_block.compare_exchange_weak(
                   prev, b, std::memory_order_release,
                   std::memory_order_relaxed)) {
        }
      }
    }
  };
  if (std::getenv("BRIDGECL_DEBUG_HAZARD") != nullptr)
    fprintf(stderr, "[hazard] %s workers=%d blocks=%llu\n",
            kernel_name.c_str(), workers,
            (unsigned long long)total_blocks);
  WorkerPool::Instance().Run(workers, run_worker);

  // ---- canonical-order reduction ----
  // Fold block results exactly as the serial loop would have: stats and
  // per-item cycle contributions for blocks 0..b accumulate before block
  // b's error (if any) is returned, matching the serial engine's
  // early-return with partial stats.
  double total_cycles = 0.0;
  uint64_t err_block = first_error_block.load(std::memory_order_acquire);
  for (uint64_t b = 0; b < total_blocks; ++b) {
    if (b > err_block) break;
    BlockResult& r = results[b];
    if (!r.executed) break;  // unclaimed tail after an error
    AccumulateStats(device.stats(), r.delta);
    for (double c : r.item_cycles) total_cycles += c;
    if (!r.status.ok()) return std::move(r.status);
  }

  int regs = module.RegistersFor(kernel);
  uint64_t total_items = config.grid.Count() * block_items;
  double before = device.now_us();
  device.ChargeKernel(total_cycles, regs, total_items);
  LaunchResult result;
  result.total_cycles = total_cycles;
  result.occupancy = device.OccupancyFor(regs);
  result.work_items = total_items;
  result.kernel_time_us = device.now_us() - before;
  return result;
}

}  // namespace bridgecl::interp
