#include "interp/worker_pool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "simgpu/virtual_memory.h"

namespace bridgecl::interp {

struct WorkerPool::Impl {
  std::mutex mu;
  std::condition_variable job_cv;   // signals a new job generation
  std::condition_variable done_cv;  // signals job completion
  std::vector<std::thread> threads;

  // Current job, valid while generation is the latest one a worker saw.
  const std::function<void(int)>* fn = nullptr;
  int last_index = 0;   // highest worker index of the current job
  int next_index = 1;   // next unclaimed worker index
  int outstanding = 0;  // helper invocations not yet finished
  uint64_t generation = 0;

  void ThreadMain() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      job_cv.wait(lk, [&] { return generation != seen; });
      seen = generation;
      // A thread may serve several indices if its siblings wake late; a
      // late-woken thread that finds no index left just waits again.
      while (next_index <= last_index) {
        int index = next_index++;
        const std::function<void(int)>* job = fn;
        lk.unlock();
        (*job)(index);
        lk.lock();
        if (--outstanding == 0) done_cv.notify_all();
      }
    }
  }
};

WorkerPool::WorkerPool() : impl_(new Impl()) {}

WorkerPool& WorkerPool::Instance() {
  static WorkerPool* pool = new WorkerPool();
  return *pool;
}

void WorkerPool::Run(int workers, const std::function<void(int)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  Impl& p = *impl_;
  {
    std::unique_lock<std::mutex> lk(p.mu);
    int helpers = workers - 1;
    while (static_cast<int>(p.threads.size()) < helpers)
      p.threads.emplace_back([&p] { p.ThreadMain(); });
    p.fn = &fn;
    p.last_index = helpers;
    p.next_index = 1;
    p.outstanding = helpers;
    ++p.generation;
    p.job_cv.notify_all();
  }
  fn(0);
  std::unique_lock<std::mutex> lk(p.mu);
  p.done_cv.wait(lk, [&p] { return p.outstanding == 0; });
  p.fn = nullptr;
}

int ResolveWorkerCountFromEnv() {
  int n = 0;
  if (const char* env = std::getenv("BRIDGECL_JOBS");
      env != nullptr && env[0] != '\0')
    n = std::atoi(env);
  if (n < 1) {
    unsigned hc = std::thread::hardware_concurrency();
    n = hc == 0 ? 1 : static_cast<int>(hc);
  }
  return std::clamp(n, 1, simgpu::VirtualMemory::kMaxWorkerSlots);
}

}  // namespace bridgecl::interp
