// Persistent host worker pool for the block-parallel kernel launcher
// (docs/PERFORMANCE.md). Threads are created lazily on the first parallel
// launch and then parked on a condition variable between jobs, so the
// per-launch dispatch cost is two lock round-trips rather than thread
// creation. The pool is process-global and deliberately never torn down
// (worker threads hold no resources beyond their stacks).
#pragma once

#include <functional>

namespace bridgecl::interp {

class WorkerPool {
 public:
  /// The process-wide pool.
  static WorkerPool& Instance();

  /// Invoke `fn(worker_index)` for every worker_index in [0, workers):
  /// index 0 runs on the calling thread, the rest on pool threads.
  /// Returns when all invocations complete. `fn` must be safe to call
  /// concurrently from distinct threads with distinct indices.
  void Run(int workers, const std::function<void(int)>& fn);

 private:
  WorkerPool();
  ~WorkerPool() = delete;  // intentionally immortal

  struct Impl;
  Impl* impl_;
};

/// Worker count from the environment: BRIDGECL_JOBS if set (>= 1), else
/// std::thread::hardware_concurrency, clamped to the VM's worker-slot
/// capacity. `BRIDGECL_JOBS=1` restores the serial engine exactly.
int ResolveWorkerCountFromEnv();

}  // namespace bridgecl::interp
