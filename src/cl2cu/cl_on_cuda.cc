#include "cl2cu/cl_on_cuda.h"

#include <cstring>
#include <unordered_map>

#include "interp/image.h"
#include "mcuda/cuda_errors.h"
#include "mocl/cl_errors.h"
#include "support/strings.h"
#include "trace/trace.h"
#include "translator/translate.h"

namespace bridgecl::cl2cu {
namespace {

using interp::ImageDesc;
using mcuda::CudaApi;
using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::AsCl;
using mocl::ClDeviceAttr;
using mocl::ClImageFormat;
using mocl::ClKernel;
using mocl::ClMem;
using mocl::ClProgram;
using mocl::ClSamplerDesc;
using mocl::MemFlags;
using mocl::OpenClApi;
using trace::TraceKind;
using translator::KernelTranslationInfo;
using translator::TranslationResult;

constexpr char kConstArena[] = "__OC2CU_const_mem";

size_t Align16(size_t n) { return (n + 15) & ~size_t{15}; }

/// Re-express a cudaError annotation from the inner CUDA runtime in the
/// vocabulary of the API this wrapper emulates (OpenCL 1.2). The full
/// cross-mapping table is documented in docs/ROBUSTNESS.md; it is the
/// wrapper-direction counterpart of CudaFromCl in cuda_on_cl.cc.
int ClFromCuda(int cuda_code) {
  switch (cuda_code) {
    case mcuda::cudaErrorMemoryAllocation:
      return mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE;
    case mcuda::cudaErrorInitializationError:
      return mocl::CL_DEVICE_NOT_AVAILABLE;
    // Launch failures, launch resource exhaustion, device-side asserts and
    // lost devices all surface as the CL catch-all execution failure.
    case mcuda::cudaErrorLaunchFailure:
    case mcuda::cudaErrorLaunchOutOfResources:
    case mcuda::cudaErrorDevicesUnavailable:
    case mcuda::cudaErrorAssert:
    case mcuda::cudaErrorUnknown:
      return mocl::CL_OUT_OF_RESOURCES;
    case mcuda::cudaErrorInvalidDeviceFunction:
      return mocl::CL_INVALID_KERNEL_NAME;
    case mcuda::cudaErrorInvalidConfiguration:
      return mocl::CL_INVALID_WORK_GROUP_SIZE;
    case mcuda::cudaErrorInvalidDevicePointer:
    case mcuda::cudaErrorInvalidTexture:
      return mocl::CL_INVALID_MEM_OBJECT;
    case mcuda::cudaErrorInvalidChannelDescriptor:
      return mocl::CL_INVALID_IMAGE_SIZE;
    case mcuda::cudaErrorInvalidResourceHandle:
    case mcuda::cudaErrorNotReady:
      return mocl::CL_INVALID_EVENT;
    case mcuda::cudaErrorNoKernelImageForDevice:
      return mocl::CL_BUILD_PROGRAM_FAILURE;
    case mcuda::cudaErrorNotSupported:
      return mocl::CL_INVALID_OPERATION;
    case mcuda::cudaErrorMissingConfiguration:
    case mcuda::cudaErrorInvalidValue:
    case mcuda::cudaErrorInvalidSymbol:
    case mcuda::cudaErrorInvalidMemcpyDirection:
    default:
      return mocl::CL_INVALID_VALUE;
  }
}

struct BufferRec {
  void* dev_ptr = nullptr;
  size_t size = 0;
};

struct ImageRec {
  // The CLImage of Figure 6: a descriptor object in CUDA device memory
  // whose `ptr` member points at a CUDA memory object with the texels.
  void* desc_ptr = nullptr;
  void* data_ptr = nullptr;
  size_t byte_size = 0;
};

/// Per-argument marshalling state collected by clSetKernelArg (§3.5: the
/// information cuLaunchKernel needs is gathered at run time).
struct ArgRec {
  enum class Kind { kUnset, kBytes, kDynLocal, kDynConst };
  Kind kind = Kind::kUnset;
  std::vector<std::byte> bytes;   // kBytes: final launch bytes
  size_t local_size = 0;          // kDynLocal
  ClMem const_buffer;             // kDynConst
  size_t const_size = 0;
};

struct ProgramRec {
  std::string source;
  bool built = false;
  TranslationResult translation;
};

struct KernelRec {
  uint64_t program = 0;
  std::string name;
  const KernelTranslationInfo* info = nullptr;
  std::vector<ArgRec> args;
};

class ClOnCudaApi final : public OpenClApi {
 public:
  explicit ClOnCudaApi(CudaApi& cu) : cu_(cu) {}

  std::string PlatformName() const override {
    return "BridgeCL OpenCL-on-CUDA wrapper";
  }

  /// Shared trace: wrapper spans record into the inner CUDA runtime's
  /// recorder, so forwarded native calls nest under them naturally.
  trace::TraceRecorder* Tracer() const override { return cu_.Tracer(); }

  StatusOr<std::string> QueryDeviceInfoString(ClDeviceAttr attr) override {
    auto span = Span(TraceKind::kApiCall, "clGetDeviceInfo");
    BRIDGECL_ASSIGN_OR_RETURN(mcuda::CudaDeviceProps p,
                              Seal(cu_.GetDeviceProperties(),
                                   mocl::CL_INVALID_DEVICE));
    switch (attr) {
      case ClDeviceAttr::kName:
        return p.name;
      case ClDeviceAttr::kVendor:
        return std::string("BridgeCL (via CUDA wrapper)");
      default:
        return AsCl(InvalidArgumentError("attribute is not a string"),
                    mocl::CL_INVALID_VALUE);
    }
  }

  StatusOr<uint64_t> QueryDeviceInfoUint(ClDeviceAttr attr) override {
    auto span = Span(TraceKind::kApiCall, "clGetDeviceInfo");
    BRIDGECL_ASSIGN_OR_RETURN(mcuda::CudaDeviceProps p,
                              Seal(cu_.GetDeviceProperties(),
                                   mocl::CL_INVALID_DEVICE));
    switch (attr) {
      case ClDeviceAttr::kMaxComputeUnits:
        return static_cast<uint64_t>(p.multi_processor_count);
      case ClDeviceAttr::kMaxWorkGroupSize:
        return static_cast<uint64_t>(p.max_threads_per_block);
      case ClDeviceAttr::kLocalMemSize:
        return static_cast<uint64_t>(p.shared_mem_per_block);
      case ClDeviceAttr::kGlobalMemSize:
        return static_cast<uint64_t>(p.total_global_mem);
      case ClDeviceAttr::kMaxConstantBufferSize:
        return static_cast<uint64_t>(p.total_const_mem);
      case ClDeviceAttr::kImage2dMaxWidth:
      case ClDeviceAttr::kImage2dMaxHeight:
      case ClDeviceAttr::kImage1dMaxBufferWidth:
        // Image limits on the CUDA side are texture limits.
        return static_cast<uint64_t>(65536);
      case ClDeviceAttr::kMaxClockFrequency:
        return static_cast<uint64_t>(p.clock_rate_khz / 1000);
      default:
        return AsCl(InvalidArgumentError("attribute is not an integer"),
                    mocl::CL_INVALID_VALUE);
    }
  }

  StatusOr<int> CreateSubDevices(int) override {
    // §3.7: CUDA has no sub-device concept; this wrapper cannot exist.
    return AsCl(UnimplementedError(
                    "clCreateSubDevices has no CUDA counterpart (§3.7)"),
                mocl::CL_INVALID_OPERATION);
  }

  // -- buffers: cl_mem == CUDA device pointer (§4) --------------------------
  StatusOr<ClMem> CreateBuffer(MemFlags, size_t size,
                               const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateBuffer");
    if (host_ptr != nullptr) span.SetBytes(size);
    if (size == 0)
      return AsCl(InvalidArgumentError("buffer size must be non-zero"),
                  mocl::CL_INVALID_BUFFER_SIZE);
    BRIDGECL_ASSIGN_OR_RETURN(
        void* p,
        Seal(cu_.Malloc(size), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE));
    if (host_ptr != nullptr) {
      Status st = cu_.Memcpy(p, host_ptr, size, MemcpyKind::kHostToDevice);
      if (!st.ok()) {
        (void)cu_.Free(p);  // don't leak the device block on a failed fill
        return Seal(std::move(st), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE);
      }
    }
    ClMem mem{reinterpret_cast<uint64_t>(p)};  // the paper's handle cast
    buffers_[mem.handle] = BufferRec{p, size};
    return mem;
  }

  Status ReleaseMemObject(ClMem mem) override {
    auto span = Span(TraceKind::kApiCall, "clReleaseMemObject");
    if (auto it = buffers_.find(mem.handle); it != buffers_.end()) {
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cu_.Free(it->second.dev_ptr), mocl::CL_OUT_OF_RESOURCES));
      buffers_.erase(it);
      return OkStatus();
    }
    if (auto it = images_.find(mem.handle); it != images_.end()) {
      if (owned_image_data_[mem.handle])
        BRIDGECL_RETURN_IF_ERROR(
            Seal(cu_.Free(it->second.data_ptr), mocl::CL_OUT_OF_RESOURCES));
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cu_.Free(it->second.desc_ptr), mocl::CL_OUT_OF_RESOURCES));
      owned_image_data_.erase(mem.handle);
      images_.erase(it);
      return OkStatus();
    }
    return AsCl(InvalidArgumentError("unknown memory object"),
                mocl::CL_INVALID_MEM_OBJECT);
  }

  Status EnqueueWriteBuffer(ClMem mem, size_t offset, size_t size,
                            const void* src) override {
    auto span = Span(TraceKind::kH2D, "clEnqueueWriteBuffer");
    span.SetBytes(size);
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("write beyond buffer end"),
                              mocl::CL_INVALID_VALUE));
    return span.Sealed(
        Seal(cu_.Memcpy(static_cast<std::byte*>(b->dev_ptr) + offset, src,
                        size, MemcpyKind::kHostToDevice),
             mocl::CL_OUT_OF_RESOURCES));
  }

  Status EnqueueReadBuffer(ClMem mem, size_t offset, size_t size,
                           void* dst) override {
    auto span = Span(TraceKind::kD2H, "clEnqueueReadBuffer");
    span.SetBytes(size);
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("read beyond buffer end"),
                              mocl::CL_INVALID_VALUE));
    return span.Sealed(
        Seal(cu_.Memcpy(dst, static_cast<std::byte*>(b->dev_ptr) + offset,
                        size, MemcpyKind::kDeviceToHost),
             mocl::CL_OUT_OF_RESOURCES));
  }

  Status EnqueueCopyBuffer(ClMem src, ClMem dst, size_t src_offset,
                           size_t dst_offset, size_t size) override {
    auto span = Span(TraceKind::kD2D, "clEnqueueCopyBuffer");
    span.SetBytes(size);
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * s, FindBuffer(src));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * d, FindBuffer(dst));
    return span.Sealed(
        Seal(cu_.Memcpy(static_cast<std::byte*>(d->dev_ptr) + dst_offset,
                        static_cast<std::byte*>(s->dev_ptr) + src_offset,
                        size, MemcpyKind::kDeviceToDevice),
             mocl::CL_OUT_OF_RESOURCES));
  }

  // -- images (§5: CLImage objects in CUDA memory) ---------------------------
  StatusOr<ClMem> CreateImage2D(MemFlags flags, const ClImageFormat& format,
                                size_t width, size_t height,
                                const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateImage2D");
    return MakeImage(flags, format, width, height, host_ptr);
  }

  StatusOr<ClMem> CreateImage1D(MemFlags flags, const ClImageFormat& format,
                                size_t width, const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateImage1D");
    return MakeImage(flags, format, width, 1, host_ptr);
  }

  StatusOr<ClMem> CreateImage1DFromBuffer(const ClImageFormat& format,
                                          size_t width,
                                          ClMem buffer) override {
    auto span = Span(TraceKind::kApiCall, "clCreateImage1DFromBuffer");
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(buffer));
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    if (width * texel > b->size)
      return AsCl(OutOfRangeError("image view larger than the backing buffer"),
                  mocl::CL_INVALID_IMAGE_SIZE);
    return MakeImageOver(b->dev_ptr, /*owns=*/false, format, width, 1);
  }

  Status EnqueueWriteImage(ClMem image, const void* src) override {
    auto span = Span(TraceKind::kH2D, "clEnqueueWriteImage");
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    span.SetBytes(img->byte_size);
    return span.Sealed(Seal(cu_.Memcpy(img->data_ptr, src, img->byte_size,
                                       MemcpyKind::kHostToDevice),
                            mocl::CL_OUT_OF_RESOURCES));
  }

  Status EnqueueReadImage(ClMem image, void* dst) override {
    auto span = Span(TraceKind::kD2H, "clEnqueueReadImage");
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    span.SetBytes(img->byte_size);
    return span.Sealed(Seal(cu_.Memcpy(dst, img->data_ptr, img->byte_size,
                                       MemcpyKind::kDeviceToHost),
                            mocl::CL_OUT_OF_RESOURCES));
  }

  StatusOr<uint64_t> CreateSampler(const ClSamplerDesc& desc) override {
    auto span = Span(TraceKind::kApiCall, "clCreateSampler");
    uint64_t bits = 0;
    if (desc.normalized_coords) bits |= interp::kSamplerNormalizedCoords;
    if (desc.address_clamp) bits |= interp::kSamplerAddressClamp;
    if (desc.filter_linear) bits |= interp::kSamplerFilterLinear;
    return bits;
  }

  // -- programs: run-time translation + nvcc (Figure 2) ----------------------
  StatusOr<ClProgram> CreateProgramWithSource(
      const std::string& source) override {
    auto span = Span(TraceKind::kApiCall, "clCreateProgramWithSource");
    uint64_t id = next_id_++;
    programs_[id].source = source;
    return ClProgram{id};
  }

  Status BuildProgram(ClProgram program) override {
    auto span = Span(TraceKind::kApiCall, "clBuildProgram");
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    DiagnosticEngine diags;
    auto tr = translator::TranslateOpenClToCuda(it->second.source, diags);
    if (!tr.ok()) {
      build_log_[program.handle] = diags.ToString();
      return AsCl(tr.status(), mocl::CL_BUILD_PROGRAM_FAILURE);
    }
    Status st = cu_.RegisterModule(tr->source);  // "nvcc" + cuModuleLoad
    if (!st.ok()) {
      build_log_[program.handle] = st.ToString();
      // Whatever the CUDA-side code was, a failed build IS
      // CL_BUILD_PROGRAM_FAILURE to the caller of clBuildProgram.
      return AsCl(std::move(st), mocl::CL_BUILD_PROGRAM_FAILURE);
    }
    it->second.translation = std::move(*tr);
    it->second.built = true;
    return OkStatus();
  }

  StatusOr<std::string> GetProgramBuildLog(ClProgram program) override {
    if (programs_.find(program.handle) == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    auto it = build_log_.find(program.handle);
    return it == build_log_.end() ? std::string() : it->second;
  }

  StatusOr<ClKernel> CreateKernel(ClProgram program,
                                  const std::string& name) override {
    auto span = Span(TraceKind::kApiCall, "clCreateKernel");
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    if (!it->second.built)
      return AsCl(FailedPreconditionError("program is not built"),
                  mocl::CL_INVALID_PROGRAM_EXECUTABLE);
    const KernelTranslationInfo* info = it->second.translation.Find(name);
    if (info == nullptr)
      return AsCl(NotFoundError("no kernel '" + name + "' in program"),
                  mocl::CL_INVALID_KERNEL_NAME);
    uint64_t id = next_id_++;
    KernelRec& k = kernels_[id];
    k.program = program.handle;
    k.name = name;
    k.info = info;
    k.args.resize(info->original_param_count);
    return ClKernel{id};
  }

  Status SetKernelArg(ClKernel kernel, int index, size_t size,
                      const void* value) override {
    auto span = Span(TraceKind::kApiCall, "clSetKernelArg");
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end())
      return AsCl(InvalidArgumentError("unknown kernel"),
                  mocl::CL_INVALID_KERNEL);
    KernelRec& k = it->second;
    if (index < 0 || index >= static_cast<int>(k.args.size()))
      return AsCl(OutOfRangeError("kernel argument index out of range"),
                  mocl::CL_INVALID_ARG_INDEX);
    using Role = KernelTranslationInfo::ParamRole;
    Role role = k.info->param_roles[index];
    ArgRec& arg = k.args[index];
    if (role == Role::kDynLocalSize) {
      if (value != nullptr)
        return AsCl(InvalidArgumentError(
                        "dynamic __local argument must have a null value"),
                    mocl::CL_INVALID_ARG_VALUE);
      arg.kind = ArgRec::Kind::kDynLocal;
      arg.local_size = size;
      return OkStatus();
    }
    if (role == Role::kDynConstSize) {
      if (value == nullptr)
        return AsCl(InvalidArgumentError(
                        "__constant pointer argument must be a memory object"),
                    mocl::CL_INVALID_ARG_VALUE);
      if (size != sizeof(ClMem))
        return AsCl(InvalidArgumentError(
                        "__constant pointer argument must be a memory object"),
                    mocl::CL_INVALID_ARG_SIZE);
      ClMem mem;
      std::memcpy(&mem, value, sizeof(mem));
      BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
      arg.kind = ArgRec::Kind::kDynConst;
      arg.const_buffer = mem;
      arg.const_size = b->size;
      return OkStatus();
    }
    if (value == nullptr)
      return AsCl(InvalidArgumentError("null value on a non-__local argument"),
                  mocl::CL_INVALID_ARG_VALUE);
    // Memory objects, images, samplers and plain data all marshal as raw
    // bytes. For image parameters (known from the translation metadata,
    // never guessed from the handle value) the cl_mem handle is replaced
    // by the CLImage descriptor pointer (§5, Fig 6); buffer handles need
    // no rewrite because the handle *is* the device pointer (§4).
    std::vector<std::byte> bytes(size);
    std::memcpy(bytes.data(), value, size);
    if (index < static_cast<int>(k.info->param_is_image.size()) &&
        k.info->param_is_image[index]) {
      if (size != sizeof(ClMem))
        return AsCl(InvalidArgumentError("image argument size mismatch"),
                    mocl::CL_INVALID_ARG_SIZE);
      ClMem handle;
      std::memcpy(&handle, value, sizeof(handle));
      auto img = images_.find(handle.handle);
      if (img == images_.end())
        return AsCl(InvalidArgumentError("argument is not an image object"),
                    mocl::CL_INVALID_ARG_VALUE);
      void* desc = img->second.desc_ptr;
      std::memcpy(bytes.data(), &desc, sizeof(desc));
    }
    arg.kind = ArgRec::Kind::kBytes;
    arg.bytes = std::move(bytes);
    return OkStatus();
  }

  Status EnqueueNDRangeKernel(ClKernel kernel, int work_dim,
                              const size_t* gws, const size_t* lws) override {
    auto span = Span(TraceKind::kKernelLaunch, "clEnqueueNDRangeKernel");
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end())
      return AsCl(InvalidArgumentError("unknown kernel"),
                  mocl::CL_INVALID_KERNEL);
    KernelRec& k = it->second;
    if (work_dim < 1 || work_dim > 3)
      return AsCl(InvalidArgumentError("work_dim must be 1, 2 or 3"),
                  mocl::CL_INVALID_WORK_DIMENSION);
    // NDRange → grid (§3.5).
    simgpu::Dim3 g(1, 1, 1), l(1, 1, 1);
    uint32_t* gp[3] = {&g.x, &g.y, &g.z};
    uint32_t* lp[3] = {&l.x, &l.y, &l.z};
    for (int d = 0; d < work_dim; ++d) {
      *gp[d] = static_cast<uint32_t>(gws[d]);
      *lp[d] = lws != nullptr ? static_cast<uint32_t>(lws[d])
                              : std::min<uint32_t>(*gp[d], 64);
    }
    simgpu::Dim3 grid;
    if (!simgpu::NdrangeToGrid(g, l, &grid))
      return AsCl(
          InvalidArgumentError(
              "global work size is not a multiple of the local work size"),
          mocl::CL_INVALID_WORK_GROUP_SIZE);

    // Marshal arguments in original order; dynamic local/constant params
    // became size_t parameters (Fig 5).
    std::vector<LaunchArg> args;
    size_t shared_total = 0;
    size_t const_offset = 0;
    for (size_t i = 0; i < k.args.size(); ++i) {
      const ArgRec& a = k.args[i];
      switch (a.kind) {
        case ArgRec::Kind::kUnset:
          return AsCl(FailedPreconditionError(StrFormat(
                          "kernel '%s': argument %zu was never set",
                          k.name.c_str(), i)),
                      mocl::CL_INVALID_KERNEL_ARGS);
        case ArgRec::Kind::kBytes: {
          LaunchArg la;
          la.bytes = a.bytes;
          args.push_back(std::move(la));
          break;
        }
        case ArgRec::Kind::kDynLocal: {
          size_t aligned = Align16(a.local_size);
          shared_total += aligned;
          args.push_back(LaunchArg::Value<size_t>(aligned));
          break;
        }
        case ArgRec::Kind::kDynConst: {
          // §4.2: the buffer contents move into the constant arena when
          // the kernel launches (the deferred copy).
          size_t aligned = Align16(a.const_size);
          BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b,
                                    FindBuffer(a.const_buffer));
          std::vector<std::byte> staging(a.const_size);
          BRIDGECL_RETURN_IF_ERROR(
              Seal(cu_.Memcpy(staging.data(), b->dev_ptr, a.const_size,
                              MemcpyKind::kDeviceToHost),
                   mocl::CL_OUT_OF_RESOURCES));
          BRIDGECL_RETURN_IF_ERROR(
              Seal(cu_.MemcpyToSymbol(kConstArena, staging.data(),
                                      a.const_size, const_offset),
                   mocl::CL_OUT_OF_RESOURCES));
          args.push_back(LaunchArg::Value<size_t>(aligned));
          const_offset += aligned;
          break;
        }
      }
    }
    Status st = Seal(cu_.LaunchKernel(k.name, grid, l, shared_total, args),
                     mocl::CL_OUT_OF_RESOURCES);
    if (st.ok()) span.SetKernel(k.name, 0, 0);  // details on the native span
    return span.Sealed(std::move(st));
  }

  Status Finish() override {
    auto span = Span(TraceKind::kApiCall, "clFinish");
    return span.Sealed(
        Seal(cu_.DeviceSynchronize(), mocl::CL_OUT_OF_RESOURCES));
  }

  StatusOr<mocl::ClEvent> EnqueueNDRangeKernelWithEvent(
      ClKernel kernel, int work_dim, const size_t* gws,
      const size_t* lws) override {
    // Wrapper implementation over CUDA events (cuEventRecord pairs).
    double queued = cu_.NowUs();
    BRIDGECL_RETURN_IF_ERROR(
        EnqueueNDRangeKernel(kernel, work_dim, gws, lws));
    uint64_t id = next_id_++;
    event_times_[id] = {queued, cu_.NowUs()};
    return mocl::ClEvent{id};
  }

  Status GetEventProfiling(mocl::ClEvent event, double* queued_us,
                           double* end_us) override {
    auto span = Span(TraceKind::kApiCall, "clGetEventProfilingInfo");
    auto it = event_times_.find(event.handle);
    if (it == event_times_.end())
      return AsCl(InvalidArgumentError("unknown event"),
                  mocl::CL_INVALID_EVENT);
    *queued_us = it->second.first;
    *end_us = it->second.second;
    return OkStatus();
  }

  Status SetProgramKernelRegisters(ClProgram program,
                                   const std::string& kernel,
                                   int regs) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    if (!it->second.built)
      return AsCl(FailedPreconditionError("program is not built"),
                  mocl::CL_INVALID_PROGRAM_EXECUTABLE);
    return Seal(cu_.SetKernelRegisters(kernel, regs),
                mocl::CL_INVALID_KERNEL_NAME);
  }

  double NowUs() const override { return cu_.NowUs(); }
  /// The run-time translate+nvcc pipeline (Fig 2) is host-side work that
  /// never enters the simulated device clock, so nothing needs excluding:
  /// NowUs() already reports build-free time.
  double BuildTimeUs() const override { return 0; }

 private:
  /// Wrapper-layer trace span over the shared recorder; forwarded native
  /// CUDA calls open child spans inside it. No-op when tracing is off.
  trace::TraceSpan Span(TraceKind kind, const char* name) {
    return trace::TraceSpan(cu_.Tracer(), kind, "cl2cu", name);
  }

  /// Boundary sealer: every Status leaving this wrapper carries a CL
  /// api_code. An inner cudaError annotation is re-mapped through
  /// ClFromCuda; an unannotated Status gets the per-StatusCode default
  /// (with `fallback` for kResourceExhausted).
  static Status Seal(Status st, int fallback) {
    if (st.ok()) return st;
    // Device loss always surfaces as CL_OUT_OF_RESOURCES, whatever the
    // inner CUDA layer annotated (the CL 1.2 spec has no dedicated code).
    int code = st.code() == StatusCode::kDeviceLost
                   ? mocl::CL_OUT_OF_RESOURCES
               : mcuda::IsCudaCode(st.api_code())
                   ? ClFromCuda(st.api_code())
                   : mocl::ClCodeFor(st, fallback);
    return AsCl(std::move(st), code);
  }

  template <typename T>
  static StatusOr<T> Seal(StatusOr<T> v, int fallback) {
    if (v.ok()) return v;
    return StatusOr<T>(Seal(std::move(v).status(), fallback));
  }

  StatusOr<BufferRec*> FindBuffer(ClMem mem) {
    auto it = buffers_.find(mem.handle);
    if (it == buffers_.end())
      return AsCl(InvalidArgumentError("unknown buffer object"),
                  mocl::CL_INVALID_MEM_OBJECT);
    return &it->second;
  }

  StatusOr<ImageRec*> FindImage(ClMem mem) {
    auto it = images_.find(mem.handle);
    if (it == images_.end())
      return AsCl(InvalidArgumentError("unknown image object"),
                  mocl::CL_INVALID_MEM_OBJECT);
    return &it->second;
  }

  StatusOr<ClMem> MakeImage(MemFlags, const ClImageFormat& format,
                            size_t width, size_t height,
                            const void* host_ptr) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    size_t bytes = width * height * texel;
    if (bytes == 0)
      return AsCl(InvalidArgumentError("image dimensions must be non-zero"),
                  mocl::CL_INVALID_IMAGE_SIZE);
    BRIDGECL_ASSIGN_OR_RETURN(
        void* data,
        Seal(cu_.Malloc(bytes), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE));
    if (host_ptr != nullptr) {
      Status st = cu_.Memcpy(data, host_ptr, bytes, MemcpyKind::kHostToDevice);
      if (!st.ok()) {
        (void)cu_.Free(data);  // don't leak texels on a failed upload
        return Seal(std::move(st), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE);
      }
    }
    auto mem = MakeImageOver(data, /*owns=*/true, format, width, height);
    if (!mem.ok()) (void)cu_.Free(data);
    return mem;
  }

  StatusOr<ClMem> MakeImageOver(void* data, bool owns,
                                const ClImageFormat& format, size_t width,
                                size_t height) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    ImageDesc desc;
    desc.data_va = reinterpret_cast<uint64_t>(data);
    desc.width = static_cast<uint32_t>(width);
    desc.height = static_cast<uint32_t>(height);
    desc.depth = 1;
    desc.channels = static_cast<uint32_t>(format.channels);
    desc.elem_kind = static_cast<uint32_t>(format.elem);
    desc.row_pitch = static_cast<uint32_t>(width * texel);
    desc.slice_pitch = static_cast<uint32_t>(width * height * texel);
    desc.dims = height > 1 ? 2 : 1;
    BRIDGECL_ASSIGN_OR_RETURN(
        void* desc_ptr,
        Seal(cu_.Malloc(sizeof(desc)),
             mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE));
    Status st = cu_.Memcpy(desc_ptr, &desc, sizeof(desc),
                           MemcpyKind::kHostToDevice);
    if (!st.ok()) {
      (void)cu_.Free(desc_ptr);  // descriptor block, not the texels
      return Seal(std::move(st), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE);
    }
    uint64_t id = next_id_++;
    ImageRec rec;
    rec.desc_ptr = desc_ptr;
    rec.data_ptr = data;  // borrowed when !owns; never freed then
    rec.byte_size = width * height * texel;
    images_[id] = rec;
    owned_image_data_[id] = owns;
    return ClMem{id};
  }

  CudaApi& cu_;
  uint64_t next_id_ = 0x4000'0000'0000'0000ull;  // disjoint from VAs
  std::unordered_map<uint64_t, BufferRec> buffers_;
  std::unordered_map<uint64_t, ImageRec> images_;
  std::unordered_map<uint64_t, bool> owned_image_data_;
  std::unordered_map<uint64_t, ProgramRec> programs_;
  std::unordered_map<uint64_t, std::string> build_log_;
  std::unordered_map<uint64_t, KernelRec> kernels_;
  std::unordered_map<uint64_t, std::pair<double, double>> event_times_;
};

}  // namespace

std::unique_ptr<OpenClApi> CreateClOnCudaApi(CudaApi& cuda) {
  return std::make_unique<ClOnCudaApi>(cuda);
}

}  // namespace bridgecl::cl2cu
