#include "cl2cu/cl_on_cuda.h"

#include <cstring>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "interp/image.h"
#include "mcuda/cuda_errors.h"
#include "mocl/cl_errors.h"
#include "support/strings.h"
#include "trace/trace.h"
#include "translator/translate.h"

namespace bridgecl::cl2cu {
namespace {

using interp::ImageDesc;
using mcuda::CudaApi;
using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::AsCl;
using mocl::ClDeviceAttr;
using mocl::ClEvent;
using mocl::ClImageFormat;
using mocl::ClKernel;
using mocl::ClMem;
using mocl::ClProgram;
using mocl::ClQueue;
using mocl::ClSamplerDesc;
using mocl::MemFlags;
using mocl::OpenClApi;
using trace::TraceKind;
using translator::KernelTranslationInfo;
using translator::TranslationResult;

constexpr char kConstArena[] = "__OC2CU_const_mem";

size_t Align16(size_t n) { return (n + 15) & ~size_t{15}; }

/// Re-express a cudaError annotation from the inner CUDA runtime in the
/// vocabulary of the API this wrapper emulates (OpenCL 1.2). The full
/// cross-mapping table is documented in docs/ROBUSTNESS.md; it is the
/// wrapper-direction counterpart of CudaFromCl in cuda_on_cl.cc.
int ClFromCuda(int cuda_code) {
  switch (cuda_code) {
    case mcuda::cudaErrorMemoryAllocation:
      return mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE;
    case mcuda::cudaErrorInitializationError:
      return mocl::CL_DEVICE_NOT_AVAILABLE;
    // Launch failures, launch resource exhaustion, device-side asserts and
    // lost devices all surface as the CL catch-all execution failure.
    case mcuda::cudaErrorLaunchFailure:
    case mcuda::cudaErrorLaunchOutOfResources:
    case mcuda::cudaErrorDevicesUnavailable:
    case mcuda::cudaErrorAssert:
    case mcuda::cudaErrorUnknown:
      return mocl::CL_OUT_OF_RESOURCES;
    case mcuda::cudaErrorInvalidDeviceFunction:
      return mocl::CL_INVALID_KERNEL_NAME;
    case mcuda::cudaErrorInvalidConfiguration:
      return mocl::CL_INVALID_WORK_GROUP_SIZE;
    case mcuda::cudaErrorInvalidDevicePointer:
    case mcuda::cudaErrorInvalidTexture:
      return mocl::CL_INVALID_MEM_OBJECT;
    case mcuda::cudaErrorInvalidChannelDescriptor:
      return mocl::CL_INVALID_IMAGE_SIZE;
    case mcuda::cudaErrorInvalidResourceHandle:
    case mcuda::cudaErrorNotReady:
      return mocl::CL_INVALID_EVENT;
    case mcuda::cudaErrorNoKernelImageForDevice:
      return mocl::CL_BUILD_PROGRAM_FAILURE;
    case mcuda::cudaErrorNotSupported:
      return mocl::CL_INVALID_OPERATION;
    case mcuda::cudaErrorMissingConfiguration:
    case mcuda::cudaErrorInvalidValue:
    case mcuda::cudaErrorInvalidSymbol:
    case mcuda::cudaErrorInvalidMemcpyDirection:
    default:
      return mocl::CL_INVALID_VALUE;
  }
}

struct BufferRec {
  void* dev_ptr = nullptr;
  size_t size = 0;
};

struct ImageRec {
  // The CLImage of Figure 6: a descriptor object in CUDA device memory
  // whose `ptr` member points at a CUDA memory object with the texels.
  void* desc_ptr = nullptr;
  void* data_ptr = nullptr;
  size_t byte_size = 0;
};

/// Per-argument marshalling state collected by clSetKernelArg (§3.5: the
/// information cuLaunchKernel needs is gathered at run time).
struct ArgRec {
  enum class Kind { kUnset, kBytes, kDynLocal, kDynConst };
  Kind kind = Kind::kUnset;
  std::vector<std::byte> bytes;   // kBytes: final launch bytes
  size_t local_size = 0;          // kDynLocal
  ClMem const_buffer;             // kDynConst
  size_t const_size = 0;
};

struct ProgramRec {
  std::string source;
  bool built = false;
  TranslationResult translation;
};

struct KernelRec {
  uint64_t program = 0;
  std::string name;
  const KernelTranslationInfo* info = nullptr;
  std::vector<ArgRec> args;
};

/// Everything cuLaunchKernel needs, marshalled once and fired on either
/// the legacy (synchronous) or the stream launch path.
struct LaunchPlan {
  std::string name;
  simgpu::Dim3 grid = simgpu::Dim3(1, 1, 1);
  simgpu::Dim3 block = simgpu::Dim3(1, 1, 1);
  size_t shared_bytes = 0;
  std::vector<LaunchArg> args;
};

/// One cl_command_queue over CUDA streams (docs/CONCURRENCY.md). An
/// in-order queue is exactly one cudaStream. An out-of-order queue has no
/// single-stream equivalent, so every command runs on a fresh stream wired
/// to its dependencies with cudaStreamWaitEvent — the wait-list DAG is
/// rebuilt from the narrower native primitives, the §3.4 wrapping pattern.
struct QueueRec {
  bool ooo = false;
  void* stream = nullptr;          // in-order stream; null = default stream
  std::vector<void*> cmd_streams;  // OoO: one fresh stream per command
  std::vector<void*> cmd_events;   // OoO: per-command completion events
  std::vector<void*> barrier_deps; // OoO: what post-barrier commands await
};

/// One cl_event. Events from the legacy profiled path are born resolved
/// (absolute times known); events from asynchronous enqueues carry a CUDA
/// event and resolve lazily against the t0 base (cuEventElapsedTime only
/// reports relative time, so the wrapper anchors it once).
struct EventRec {
  double queued_us = 0;
  bool resolved = false;
  double end_us = 0;
  void* cuda_event = nullptr;
};

class ClOnCudaApi final : public OpenClApi {
 public:
  explicit ClOnCudaApi(CudaApi& cu) : cu_(cu) {
    queues_[0] = QueueRec{};  // the default in-order queue always exists
  }

  std::string PlatformName() const override {
    return "BridgeCL OpenCL-on-CUDA wrapper";
  }

  /// Shared trace: wrapper spans record into the inner CUDA runtime's
  /// recorder, so forwarded native calls nest under them naturally.
  trace::TraceRecorder* Tracer() const override { return cu_.Tracer(); }

  /// bridgeclSnapshot/bridgeclRestore forward to the inner CUDA runtime:
  /// the image records the native layer actually driving the device, so a
  /// snapshot taken through this wrapper restores through any CUDA-backed
  /// binding. The inner cudaError annotation is re-sealed into the CL
  /// vocabulary at the boundary, like every other forwarded call.
  Status Snapshot(const std::string& path) override {
    auto span = Span(TraceKind::kApiCall, "bridgeclSnapshot");
    return span.Sealed(Seal(cu_.Snapshot(path), mocl::CL_OUT_OF_RESOURCES));
  }
  Status Restore(const std::string& path) override {
    auto span = Span(TraceKind::kApiCall, "bridgeclRestore");
    return span.Sealed(Seal(cu_.Restore(path), mocl::CL_OUT_OF_RESOURCES));
  }

  StatusOr<std::string> QueryDeviceInfoString(ClDeviceAttr attr) override {
    auto span = Span(TraceKind::kApiCall, "clGetDeviceInfo");
    BRIDGECL_ASSIGN_OR_RETURN(mcuda::CudaDeviceProps p,
                              Seal(cu_.GetDeviceProperties(),
                                   mocl::CL_INVALID_DEVICE));
    switch (attr) {
      case ClDeviceAttr::kName:
        return p.name;
      case ClDeviceAttr::kVendor:
        return std::string("BridgeCL (via CUDA wrapper)");
      default:
        return AsCl(InvalidArgumentError("attribute is not a string"),
                    mocl::CL_INVALID_VALUE);
    }
  }

  StatusOr<uint64_t> QueryDeviceInfoUint(ClDeviceAttr attr) override {
    auto span = Span(TraceKind::kApiCall, "clGetDeviceInfo");
    BRIDGECL_ASSIGN_OR_RETURN(mcuda::CudaDeviceProps p,
                              Seal(cu_.GetDeviceProperties(),
                                   mocl::CL_INVALID_DEVICE));
    switch (attr) {
      case ClDeviceAttr::kMaxComputeUnits:
        return static_cast<uint64_t>(p.multi_processor_count);
      case ClDeviceAttr::kMaxWorkGroupSize:
        return static_cast<uint64_t>(p.max_threads_per_block);
      case ClDeviceAttr::kLocalMemSize:
        return static_cast<uint64_t>(p.shared_mem_per_block);
      case ClDeviceAttr::kGlobalMemSize:
        return static_cast<uint64_t>(p.total_global_mem);
      case ClDeviceAttr::kMaxConstantBufferSize:
        return static_cast<uint64_t>(p.total_const_mem);
      case ClDeviceAttr::kImage2dMaxWidth:
      case ClDeviceAttr::kImage2dMaxHeight:
      case ClDeviceAttr::kImage1dMaxBufferWidth:
        // Image limits on the CUDA side are texture limits.
        return static_cast<uint64_t>(65536);
      case ClDeviceAttr::kMaxClockFrequency:
        return static_cast<uint64_t>(p.clock_rate_khz / 1000);
      default:
        return AsCl(InvalidArgumentError("attribute is not an integer"),
                    mocl::CL_INVALID_VALUE);
    }
  }

  StatusOr<int> CreateSubDevices(int) override {
    // §3.7: CUDA has no sub-device concept; this wrapper cannot exist.
    return AsCl(UnimplementedError(
                    "clCreateSubDevices has no CUDA counterpart (§3.7)"),
                mocl::CL_INVALID_OPERATION);
  }

  // -- buffers: cl_mem == CUDA device pointer (§4) --------------------------
  StatusOr<ClMem> CreateBuffer(MemFlags, size_t size,
                               const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateBuffer");
    if (host_ptr != nullptr) span.SetBytes(size);
    if (size == 0)
      return AsCl(InvalidArgumentError("buffer size must be non-zero"),
                  mocl::CL_INVALID_BUFFER_SIZE);
    BRIDGECL_ASSIGN_OR_RETURN(
        void* p,
        Seal(cu_.Malloc(size), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE));
    if (host_ptr != nullptr) {
      Status st = cu_.Memcpy(p, host_ptr, size, MemcpyKind::kHostToDevice);
      if (!st.ok()) {
        (void)cu_.Free(p);  // don't leak the device block on a failed fill
        return Seal(std::move(st), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE);
      }
    }
    ClMem mem{reinterpret_cast<uint64_t>(p)};  // the paper's handle cast
    buffers_[mem.handle] = BufferRec{p, size};
    return mem;
  }

  Status ReleaseMemObject(ClMem mem) override {
    auto span = Span(TraceKind::kApiCall, "clReleaseMemObject");
    if (auto it = buffers_.find(mem.handle); it != buffers_.end()) {
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cu_.Free(it->second.dev_ptr), mocl::CL_OUT_OF_RESOURCES));
      buffers_.erase(it);
      return OkStatus();
    }
    if (auto it = images_.find(mem.handle); it != images_.end()) {
      if (owned_image_data_[mem.handle])
        BRIDGECL_RETURN_IF_ERROR(
            Seal(cu_.Free(it->second.data_ptr), mocl::CL_OUT_OF_RESOURCES));
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cu_.Free(it->second.desc_ptr), mocl::CL_OUT_OF_RESOURCES));
      owned_image_data_.erase(mem.handle);
      images_.erase(it);
      return OkStatus();
    }
    return AsCl(InvalidArgumentError("unknown memory object"),
                mocl::CL_INVALID_MEM_OBJECT);
  }

  Status EnqueueWriteBuffer(ClMem mem, size_t offset, size_t size,
                            const void* src) override {
    auto span = Span(TraceKind::kH2D, "clEnqueueWriteBuffer");
    span.SetBytes(size);
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("write beyond buffer end"),
                              mocl::CL_INVALID_VALUE));
    return span.Sealed(
        Seal(cu_.Memcpy(static_cast<std::byte*>(b->dev_ptr) + offset, src,
                        size, MemcpyKind::kHostToDevice),
             mocl::CL_OUT_OF_RESOURCES));
  }

  Status EnqueueReadBuffer(ClMem mem, size_t offset, size_t size,
                           void* dst) override {
    auto span = Span(TraceKind::kD2H, "clEnqueueReadBuffer");
    span.SetBytes(size);
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("read beyond buffer end"),
                              mocl::CL_INVALID_VALUE));
    return span.Sealed(
        Seal(cu_.Memcpy(dst, static_cast<std::byte*>(b->dev_ptr) + offset,
                        size, MemcpyKind::kDeviceToHost),
             mocl::CL_OUT_OF_RESOURCES));
  }

  Status EnqueueCopyBuffer(ClMem src, ClMem dst, size_t src_offset,
                           size_t dst_offset, size_t size) override {
    auto span = Span(TraceKind::kD2D, "clEnqueueCopyBuffer");
    span.SetBytes(size);
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * s, FindBuffer(src));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * d, FindBuffer(dst));
    return span.Sealed(
        Seal(cu_.Memcpy(static_cast<std::byte*>(d->dev_ptr) + dst_offset,
                        static_cast<std::byte*>(s->dev_ptr) + src_offset,
                        size, MemcpyKind::kDeviceToDevice),
             mocl::CL_OUT_OF_RESOURCES));
  }

  // -- images (§5: CLImage objects in CUDA memory) ---------------------------
  StatusOr<ClMem> CreateImage2D(MemFlags flags, const ClImageFormat& format,
                                size_t width, size_t height,
                                const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateImage2D");
    return MakeImage(flags, format, width, height, host_ptr);
  }

  StatusOr<ClMem> CreateImage1D(MemFlags flags, const ClImageFormat& format,
                                size_t width, const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateImage1D");
    return MakeImage(flags, format, width, 1, host_ptr);
  }

  StatusOr<ClMem> CreateImage1DFromBuffer(const ClImageFormat& format,
                                          size_t width,
                                          ClMem buffer) override {
    auto span = Span(TraceKind::kApiCall, "clCreateImage1DFromBuffer");
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(buffer));
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    if (width * texel > b->size)
      return AsCl(OutOfRangeError("image view larger than the backing buffer"),
                  mocl::CL_INVALID_IMAGE_SIZE);
    return MakeImageOver(b->dev_ptr, /*owns=*/false, format, width, 1);
  }

  Status EnqueueWriteImage(ClMem image, const void* src) override {
    auto span = Span(TraceKind::kH2D, "clEnqueueWriteImage");
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    span.SetBytes(img->byte_size);
    return span.Sealed(Seal(cu_.Memcpy(img->data_ptr, src, img->byte_size,
                                       MemcpyKind::kHostToDevice),
                            mocl::CL_OUT_OF_RESOURCES));
  }

  Status EnqueueReadImage(ClMem image, void* dst) override {
    auto span = Span(TraceKind::kD2H, "clEnqueueReadImage");
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    span.SetBytes(img->byte_size);
    return span.Sealed(Seal(cu_.Memcpy(dst, img->data_ptr, img->byte_size,
                                       MemcpyKind::kDeviceToHost),
                            mocl::CL_OUT_OF_RESOURCES));
  }

  StatusOr<uint64_t> CreateSampler(const ClSamplerDesc& desc) override {
    auto span = Span(TraceKind::kApiCall, "clCreateSampler");
    uint64_t bits = 0;
    if (desc.normalized_coords) bits |= interp::kSamplerNormalizedCoords;
    if (desc.address_clamp) bits |= interp::kSamplerAddressClamp;
    if (desc.filter_linear) bits |= interp::kSamplerFilterLinear;
    return bits;
  }

  // -- programs: run-time translation + nvcc (Figure 2) ----------------------
  StatusOr<ClProgram> CreateProgramWithSource(
      const std::string& source) override {
    auto span = Span(TraceKind::kApiCall, "clCreateProgramWithSource");
    uint64_t id = next_id_++;
    programs_[id].source = source;
    return ClProgram{id};
  }

  Status BuildProgram(ClProgram program) override {
    auto span = Span(TraceKind::kApiCall, "clBuildProgram");
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    DiagnosticEngine diags;
    auto tr = translator::TranslateOpenClToCuda(it->second.source, diags);
    if (!tr.ok()) {
      build_log_[program.handle] = diags.ToString();
      return AsCl(tr.status(), mocl::CL_BUILD_PROGRAM_FAILURE);
    }
    Status st = cu_.RegisterModule(tr->source);  // "nvcc" + cuModuleLoad
    if (!st.ok()) {
      build_log_[program.handle] = st.ToString();
      // Whatever the CUDA-side code was, a failed build IS
      // CL_BUILD_PROGRAM_FAILURE to the caller of clBuildProgram.
      return AsCl(std::move(st), mocl::CL_BUILD_PROGRAM_FAILURE);
    }
    it->second.translation = std::move(*tr);
    it->second.built = true;
    return OkStatus();
  }

  StatusOr<std::string> GetProgramBuildLog(ClProgram program) override {
    if (programs_.find(program.handle) == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    auto it = build_log_.find(program.handle);
    return it == build_log_.end() ? std::string() : it->second;
  }

  StatusOr<ClKernel> CreateKernel(ClProgram program,
                                  const std::string& name) override {
    auto span = Span(TraceKind::kApiCall, "clCreateKernel");
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    if (!it->second.built)
      return AsCl(FailedPreconditionError("program is not built"),
                  mocl::CL_INVALID_PROGRAM_EXECUTABLE);
    const KernelTranslationInfo* info = it->second.translation.Find(name);
    if (info == nullptr)
      return AsCl(NotFoundError("no kernel '" + name + "' in program"),
                  mocl::CL_INVALID_KERNEL_NAME);
    uint64_t id = next_id_++;
    KernelRec& k = kernels_[id];
    k.program = program.handle;
    k.name = name;
    k.info = info;
    k.args.resize(info->original_param_count);
    return ClKernel{id};
  }

  Status SetKernelArg(ClKernel kernel, int index, size_t size,
                      const void* value) override {
    auto span = Span(TraceKind::kApiCall, "clSetKernelArg");
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end())
      return AsCl(InvalidArgumentError("unknown kernel"),
                  mocl::CL_INVALID_KERNEL);
    KernelRec& k = it->second;
    if (index < 0 || index >= static_cast<int>(k.args.size()))
      return AsCl(OutOfRangeError("kernel argument index out of range"),
                  mocl::CL_INVALID_ARG_INDEX);
    using Role = KernelTranslationInfo::ParamRole;
    Role role = k.info->param_roles[index];
    ArgRec& arg = k.args[index];
    if (role == Role::kDynLocalSize) {
      if (value != nullptr)
        return AsCl(InvalidArgumentError(
                        "dynamic __local argument must have a null value"),
                    mocl::CL_INVALID_ARG_VALUE);
      arg.kind = ArgRec::Kind::kDynLocal;
      arg.local_size = size;
      return OkStatus();
    }
    if (role == Role::kDynConstSize) {
      if (value == nullptr)
        return AsCl(InvalidArgumentError(
                        "__constant pointer argument must be a memory object"),
                    mocl::CL_INVALID_ARG_VALUE);
      if (size != sizeof(ClMem))
        return AsCl(InvalidArgumentError(
                        "__constant pointer argument must be a memory object"),
                    mocl::CL_INVALID_ARG_SIZE);
      ClMem mem;
      std::memcpy(&mem, value, sizeof(mem));
      BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
      arg.kind = ArgRec::Kind::kDynConst;
      arg.const_buffer = mem;
      arg.const_size = b->size;
      return OkStatus();
    }
    if (value == nullptr)
      return AsCl(InvalidArgumentError("null value on a non-__local argument"),
                  mocl::CL_INVALID_ARG_VALUE);
    // Memory objects, images, samplers and plain data all marshal as raw
    // bytes. For image parameters (known from the translation metadata,
    // never guessed from the handle value) the cl_mem handle is replaced
    // by the CLImage descriptor pointer (§5, Fig 6); buffer handles need
    // no rewrite because the handle *is* the device pointer (§4).
    std::vector<std::byte> bytes(size);
    std::memcpy(bytes.data(), value, size);
    if (index < static_cast<int>(k.info->param_is_image.size()) &&
        k.info->param_is_image[index]) {
      if (size != sizeof(ClMem))
        return AsCl(InvalidArgumentError("image argument size mismatch"),
                    mocl::CL_INVALID_ARG_SIZE);
      ClMem handle;
      std::memcpy(&handle, value, sizeof(handle));
      auto img = images_.find(handle.handle);
      if (img == images_.end())
        return AsCl(InvalidArgumentError("argument is not an image object"),
                    mocl::CL_INVALID_ARG_VALUE);
      void* desc = img->second.desc_ptr;
      std::memcpy(bytes.data(), &desc, sizeof(desc));
    }
    arg.kind = ArgRec::Kind::kBytes;
    arg.bytes = std::move(bytes);
    return OkStatus();
  }

  Status EnqueueNDRangeKernel(ClKernel kernel, int work_dim,
                              const size_t* gws, const size_t* lws) override {
    auto span = Span(TraceKind::kKernelLaunch, "clEnqueueNDRangeKernel");
    LaunchPlan plan;
    BRIDGECL_RETURN_IF_ERROR(PrepareLaunch(kernel, work_dim, gws, lws, &plan));
    Status st = Seal(cu_.LaunchKernel(plan.name, plan.grid, plan.block,
                                      plan.shared_bytes, plan.args),
                     mocl::CL_OUT_OF_RESOURCES);
    if (st.ok()) span.SetKernel(plan.name, 0, 0);  // details on the native span
    return span.Sealed(std::move(st));
  }

  Status EnqueueNDRangeKernelOn(ClQueue queue, ClKernel kernel, int work_dim,
                                const size_t* gws, const size_t* lws,
                                std::span<const ClEvent> wait_events,
                                ClEvent* out_event) override {
    auto span = Span(TraceKind::kKernelLaunch, "clEnqueueNDRangeKernel");
    double queued = cu_.NowUs();
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    LaunchPlan plan;
    BRIDGECL_RETURN_IF_ERROR(PrepareLaunch(kernel, work_dim, gws, lws, &plan));
    Status st = EnqueueOn(*q, /*blocking=*/false, queued, wait_events,
                          out_event, [&](void* stream) {
                            return cu_.LaunchKernelOnStream(
                                plan.name, plan.grid, plan.block,
                                plan.shared_bytes, plan.args, stream);
                          });
    if (st.ok()) span.SetKernel(plan.name, 0, 0);
    return span.Sealed(std::move(st));
  }

 private:
  /// Shared NDRange→<<<grid,block,shared>>> marshalling for the legacy and
  /// stream launch paths: kernel lookup, grid derivation (§3.5) and
  /// argument packing, including the deferred __constant copy (§4.2).
  Status PrepareLaunch(ClKernel kernel, int work_dim, const size_t* gws,
                       const size_t* lws, LaunchPlan* plan) {
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end())
      return AsCl(InvalidArgumentError("unknown kernel"),
                  mocl::CL_INVALID_KERNEL);
    KernelRec& k = it->second;
    if (work_dim < 1 || work_dim > 3)
      return AsCl(InvalidArgumentError("work_dim must be 1, 2 or 3"),
                  mocl::CL_INVALID_WORK_DIMENSION);
    // NDRange → grid (§3.5).
    simgpu::Dim3 g(1, 1, 1), l(1, 1, 1);
    uint32_t* gp[3] = {&g.x, &g.y, &g.z};
    uint32_t* lp[3] = {&l.x, &l.y, &l.z};
    for (int d = 0; d < work_dim; ++d) {
      *gp[d] = static_cast<uint32_t>(gws[d]);
      *lp[d] = lws != nullptr ? static_cast<uint32_t>(lws[d])
                              : std::min<uint32_t>(*gp[d], 64);
    }
    simgpu::Dim3 grid;
    if (!simgpu::NdrangeToGrid(g, l, &grid))
      return AsCl(
          InvalidArgumentError(
              "global work size is not a multiple of the local work size"),
          mocl::CL_INVALID_WORK_GROUP_SIZE);

    // Marshal arguments in original order; dynamic local/constant params
    // became size_t parameters (Fig 5).
    std::vector<LaunchArg> args;
    size_t shared_total = 0;
    size_t const_offset = 0;
    for (size_t i = 0; i < k.args.size(); ++i) {
      const ArgRec& a = k.args[i];
      switch (a.kind) {
        case ArgRec::Kind::kUnset:
          return AsCl(FailedPreconditionError(StrFormat(
                          "kernel '%s': argument %zu was never set",
                          k.name.c_str(), i)),
                      mocl::CL_INVALID_KERNEL_ARGS);
        case ArgRec::Kind::kBytes: {
          LaunchArg la;
          la.bytes = a.bytes;
          args.push_back(std::move(la));
          break;
        }
        case ArgRec::Kind::kDynLocal: {
          size_t aligned = Align16(a.local_size);
          shared_total += aligned;
          args.push_back(LaunchArg::Value<size_t>(aligned));
          break;
        }
        case ArgRec::Kind::kDynConst: {
          // §4.2: the buffer contents move into the constant arena when
          // the kernel launches (the deferred copy).
          size_t aligned = Align16(a.const_size);
          BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b,
                                    FindBuffer(a.const_buffer));
          std::vector<std::byte> staging(a.const_size);
          BRIDGECL_RETURN_IF_ERROR(
              Seal(cu_.Memcpy(staging.data(), b->dev_ptr, a.const_size,
                              MemcpyKind::kDeviceToHost),
                   mocl::CL_OUT_OF_RESOURCES));
          BRIDGECL_RETURN_IF_ERROR(
              Seal(cu_.MemcpyToSymbol(kConstArena, staging.data(),
                                      a.const_size, const_offset),
                   mocl::CL_OUT_OF_RESOURCES));
          args.push_back(LaunchArg::Value<size_t>(aligned));
          const_offset += aligned;
          break;
        }
      }
    }
    plan->name = k.name;
    plan->grid = grid;
    plan->block = l;
    plan->shared_bytes = shared_total;
    plan->args = std::move(args);
    return OkStatus();
  }

 public:
  Status Finish() override {
    auto span = Span(TraceKind::kApiCall, "clFinish");
    return span.Sealed(
        Seal(cu_.DeviceSynchronize(), mocl::CL_OUT_OF_RESOURCES));
  }

  // -- command queues & asynchronous enqueues (docs/CONCURRENCY.md) ----------
  StatusOr<ClQueue> CreateCommandQueue(uint64_t properties) override {
    auto span = Span(TraceKind::kApiCall, "clCreateCommandQueue");
    if ((properties & ~mocl::CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE) != 0)
      return AsCl(InvalidArgumentError("unknown command-queue property bits"),
                  mocl::CL_INVALID_VALUE);
    QueueRec rec;
    rec.ooo =
        (properties & mocl::CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE) != 0;
    if (!rec.ooo) {
      // In-order CL queue == one CUDA stream; OoO queues make streams
      // per command instead.
      BRIDGECL_ASSIGN_OR_RETURN(
          rec.stream, Seal(cu_.StreamCreate(), mocl::CL_OUT_OF_RESOURCES));
    }
    uint64_t id = next_queue_++;
    queues_[id] = rec;
    return ClQueue{id};
  }

  Status ReleaseCommandQueue(ClQueue queue) override {
    auto span = Span(TraceKind::kApiCall, "clReleaseCommandQueue");
    if (queue.handle == 0)
      return span.Sealed(
          AsCl(InvalidArgumentError("cannot release the default queue"),
               mocl::CL_INVALID_COMMAND_QUEUE));
    auto it = queues_.find(queue.handle);
    if (it == queues_.end())
      return span.Sealed(AsCl(InvalidArgumentError("unknown command queue"),
                              mocl::CL_INVALID_COMMAND_QUEUE));
    Status st = DrainQueue(it->second);  // implicit clFinish
    if (it->second.stream != nullptr) {
      Status ds =
          Seal(cu_.StreamDestroy(it->second.stream), mocl::CL_OUT_OF_RESOURCES);
      if (st.ok()) st = std::move(ds);
    }
    queues_.erase(it);
    return span.Sealed(std::move(st));
  }

  Status EnqueueWriteBufferOn(ClQueue queue, ClMem mem, size_t offset,
                              size_t size, const void* src, bool blocking,
                              std::span<const ClEvent> wait_events,
                              ClEvent* out_event) override {
    auto span = Span(TraceKind::kH2D, "clEnqueueWriteBuffer");
    span.SetBytes(size);
    double queued = cu_.NowUs();
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("write beyond buffer end"),
                              mocl::CL_INVALID_VALUE));
    void* dst = static_cast<std::byte*>(b->dev_ptr) + offset;
    return span.Sealed(EnqueueOn(
        *q, blocking, queued, wait_events, out_event, [&](void* stream) {
          return cu_.MemcpyAsync(dst, src, size, MemcpyKind::kHostToDevice,
                                 stream);
        }));
  }

  Status EnqueueReadBufferOn(ClQueue queue, ClMem mem, size_t offset,
                             size_t size, void* dst, bool blocking,
                             std::span<const ClEvent> wait_events,
                             ClEvent* out_event) override {
    auto span = Span(TraceKind::kD2H, "clEnqueueReadBuffer");
    span.SetBytes(size);
    double queued = cu_.NowUs();
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("read beyond buffer end"),
                              mocl::CL_INVALID_VALUE));
    const void* from = static_cast<std::byte*>(b->dev_ptr) + offset;
    return span.Sealed(EnqueueOn(
        *q, blocking, queued, wait_events, out_event, [&](void* stream) {
          return cu_.MemcpyAsync(dst, from, size, MemcpyKind::kDeviceToHost,
                                 stream);
        }));
  }

  Status EnqueueCopyBufferOn(ClQueue queue, ClMem src, ClMem dst,
                             size_t src_offset, size_t dst_offset, size_t size,
                             std::span<const ClEvent> wait_events,
                             ClEvent* out_event) override {
    auto span = Span(TraceKind::kD2D, "clEnqueueCopyBuffer");
    span.SetBytes(size);
    double queued = cu_.NowUs();
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * s, FindBuffer(src));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * d, FindBuffer(dst));
    if (src_offset + size > s->size || dst_offset + size > d->size)
      return span.Sealed(AsCl(OutOfRangeError("copy beyond buffer end"),
                              mocl::CL_INVALID_VALUE));
    void* to = static_cast<std::byte*>(d->dev_ptr) + dst_offset;
    const void* from = static_cast<std::byte*>(s->dev_ptr) + src_offset;
    return span.Sealed(EnqueueOn(
        *q, /*blocking=*/false, queued, wait_events, out_event,
        [&](void* stream) {
          return cu_.MemcpyAsync(to, from, size, MemcpyKind::kDeviceToDevice,
                                 stream);
        }));
  }

  StatusOr<ClEvent> EnqueueMarkerWithWaitList(
      ClQueue queue, std::span<const ClEvent> wait_events) override {
    auto span = Span(TraceKind::kApiCall, "clEnqueueMarkerWithWaitList");
    double queued = cu_.NowUs();
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    return MarkerImpl(*q, wait_events, queued);
  }

  StatusOr<ClEvent> EnqueueBarrier(ClQueue queue) override {
    auto span = Span(TraceKind::kApiCall, "clEnqueueBarrierWithWaitList");
    double queued = cu_.NowUs();
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    BRIDGECL_ASSIGN_OR_RETURN(ClEvent ev, MarkerImpl(*q, {}, queued));
    // The barrier's own completion event now dominates everything enqueued
    // so far: post-barrier commands need only wait on it.
    if (q->ooo && !q->cmd_events.empty())
      q->barrier_deps.assign(1, q->cmd_events.back());
    return ev;
  }

  Status Flush(ClQueue queue) override {
    // Submission hint: commands were already handed to the CUDA runtime at
    // enqueue, so flushing only validates the handle.
    auto span = Span(TraceKind::kApiCall, "clFlush");
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    (void)q;
    return OkStatus();
  }

  Status Finish(ClQueue queue) override {
    auto span = Span(TraceKind::kApiCall, "clFinish");
    BRIDGECL_ASSIGN_OR_RETURN(QueueRec * q, FindQueue(queue));
    return span.Sealed(DrainQueue(*q));
  }

  Status WaitForEvents(std::span<const ClEvent> events) override {
    auto span = Span(TraceKind::kApiCall, "clWaitForEvents");
    Status first;
    for (const ClEvent& e : events) {
      auto it = event_map_.find(e.handle);
      if (it == event_map_.end())
        return span.Sealed(AsCl(InvalidArgumentError("unknown event"),
                                mocl::CL_INVALID_EVENT));
      if (it->second.cuda_event == nullptr) continue;  // already complete
      Status st = Seal(cu_.EventSynchronize(it->second.cuda_event),
                       mocl::CL_OUT_OF_RESOURCES);
      if (first.ok() && !st.ok()) first = std::move(st);
    }
    return span.Sealed(std::move(first));
  }

  Status ReleaseEvent(ClEvent event) override {
    auto span = Span(TraceKind::kApiCall, "clReleaseEvent");
    auto it = event_map_.find(event.handle);
    if (it == event_map_.end())
      return span.Sealed(AsCl(InvalidArgumentError("unknown event"),
                              mocl::CL_INVALID_EVENT));
    Status st;
    if (it->second.cuda_event != nullptr)
      st = Seal(cu_.EventDestroy(it->second.cuda_event),
                mocl::CL_INVALID_EVENT);
    event_map_.erase(it);
    return span.Sealed(std::move(st));
  }

  StatusOr<mocl::ClEvent> EnqueueNDRangeKernelWithEvent(
      ClKernel kernel, int work_dim, const size_t* gws,
      const size_t* lws) override {
    // Legacy profiled path: the launch is synchronous, so the event is
    // born with its absolute times already resolved.
    double queued = cu_.NowUs();
    BRIDGECL_RETURN_IF_ERROR(
        EnqueueNDRangeKernel(kernel, work_dim, gws, lws));
    uint64_t id = next_id_++;
    EventRec er;
    er.queued_us = queued;
    er.resolved = true;
    er.end_us = cu_.NowUs();
    event_map_[id] = er;
    return mocl::ClEvent{id};
  }

  Status GetEventProfiling(mocl::ClEvent event, double* queued_us,
                           double* end_us) override {
    auto span = Span(TraceKind::kApiCall, "clGetEventProfilingInfo");
    auto it = event_map_.find(event.handle);
    if (it == event_map_.end())
      return AsCl(InvalidArgumentError("unknown event"),
                  mocl::CL_INVALID_EVENT);
    EventRec& er = it->second;
    if (!er.resolved) {
      // Asynchronous event: wait for it, then anchor cuEventElapsedTime's
      // relative reading to the t0 base to recover an absolute end time.
      BRIDGECL_RETURN_IF_ERROR(Seal(cu_.EventSynchronize(er.cuda_event),
                                    mocl::CL_OUT_OF_RESOURCES));
      BRIDGECL_ASSIGN_OR_RETURN(double rel,
                                Seal(cu_.EventElapsedUs(t0_, er.cuda_event),
                                     mocl::CL_INVALID_EVENT));
      er.end_us = t0_now_ + rel;
      er.resolved = true;
    }
    *queued_us = er.queued_us;
    *end_us = er.end_us;
    return OkStatus();
  }

  Status SetProgramKernelRegisters(ClProgram program,
                                   const std::string& kernel,
                                   int regs) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  mocl::CL_INVALID_PROGRAM);
    if (!it->second.built)
      return AsCl(FailedPreconditionError("program is not built"),
                  mocl::CL_INVALID_PROGRAM_EXECUTABLE);
    return Seal(cu_.SetKernelRegisters(kernel, regs),
                mocl::CL_INVALID_KERNEL_NAME);
  }

  double NowUs() const override { return cu_.NowUs(); }
  /// The run-time translate+nvcc pipeline (Fig 2) is host-side work that
  /// never enters the simulated device clock, so nothing needs excluding:
  /// NowUs() already reports build-free time.
  double BuildTimeUs() const override { return 0; }

 private:
  /// Wrapper-layer trace span over the shared recorder; forwarded native
  /// CUDA calls open child spans inside it. No-op when tracing is off.
  trace::TraceSpan Span(TraceKind kind, const char* name) {
    return trace::TraceSpan(cu_.Tracer(), kind, "cl2cu", name);
  }

  /// Boundary sealer: every Status leaving this wrapper carries a CL
  /// api_code. An inner cudaError annotation is re-mapped through
  /// ClFromCuda; an unannotated Status gets the per-StatusCode default
  /// (with `fallback` for kResourceExhausted).
  static Status Seal(Status st, int fallback) {
    if (st.ok()) return st;
    // Device loss always surfaces as CL_OUT_OF_RESOURCES, whatever the
    // inner CUDA layer annotated (the CL 1.2 spec has no dedicated code).
    int code = st.code() == StatusCode::kDeviceLost
                   ? mocl::CL_OUT_OF_RESOURCES
               : mcuda::IsCudaCode(st.api_code())
                   ? ClFromCuda(st.api_code())
                   : mocl::ClCodeFor(st, fallback);
    return AsCl(std::move(st), code);
  }

  template <typename T>
  static StatusOr<T> Seal(StatusOr<T> v, int fallback) {
    if (v.ok()) return v;
    return StatusOr<T>(Seal(std::move(v).status(), fallback));
  }

  StatusOr<QueueRec*> FindQueue(ClQueue queue) {
    auto it = queues_.find(queue.handle);
    if (it == queues_.end())
      return AsCl(InvalidArgumentError("unknown command queue"),
                  mocl::CL_INVALID_COMMAND_QUEUE);
    return &it->second;
  }

  /// Lazily plants the absolute-time base: a CUDA event recorded on a
  /// private, freshly created (and therefore empty) stream and
  /// synchronized, so its completion instant is NowUs() exactly.
  /// Recording on the default stream instead would anchor t0 behind
  /// everything already enqueued there — an over-synchronization that
  /// dragged every first blocking transfer out to the default queue's
  /// horizon (sched_test's FirstEventCommandDoesNotSyncDefaultQueue pins
  /// the fix). Asynchronous CL events report absolute end times as
  /// t0_now_ + cuEventElapsedTime(t0, event).
  Status EnsureT0() {
    if (t0_ != nullptr) return OkStatus();
    BRIDGECL_ASSIGN_OR_RETURN(
        void* ev, Seal(cu_.EventCreate(), mocl::CL_OUT_OF_RESOURCES));
    auto anchor = cu_.StreamCreate();
    if (!anchor.ok()) {
      (void)cu_.EventDestroy(ev);
      return Seal(std::move(anchor).status(), mocl::CL_OUT_OF_RESOURCES);
    }
    Status st = cu_.EventRecordOnStream(ev, *anchor);
    if (st.ok()) st = cu_.EventSynchronize(ev);
    (void)cu_.StreamDestroy(*anchor);
    if (!st.ok()) {
      (void)cu_.EventDestroy(ev);
      return Seal(std::move(st), mocl::CL_OUT_OF_RESOURCES);
    }
    t0_ = ev;
    t0_now_ = cu_.NowUs();
    return OkStatus();
  }

  /// Common choreography for one asynchronous command on `q`: resolve the
  /// wait list to CUDA events, pick or create the stream, wire the
  /// dependencies with cudaStreamWaitEvent, run `issue` on that stream,
  /// then record the completion events (per-command for OoO bookkeeping,
  /// user-visible when `out_event` is wanted).
  Status EnqueueOn(QueueRec& q, bool blocking, double queued,
                   std::span<const ClEvent> wait_events, ClEvent* out_event,
                   const std::function<Status(void*)>& issue) {
    if (out_event != nullptr) BRIDGECL_RETURN_IF_ERROR(EnsureT0());
    std::vector<void*> deps;
    for (const ClEvent& w : wait_events) {
      auto it = event_map_.find(w.handle);
      if (it == event_map_.end())
        return AsCl(InvalidArgumentError("unknown event in wait list"),
                    mocl::CL_INVALID_EVENT);
      // Resolved events already completed; no dependency edge needed.
      if (it->second.cuda_event != nullptr)
        deps.push_back(it->second.cuda_event);
    }
    void* stream = q.stream;
    if (q.ooo) {
      BRIDGECL_ASSIGN_OR_RETURN(
          stream, Seal(cu_.StreamCreate(), mocl::CL_OUT_OF_RESOURCES));
      q.cmd_streams.push_back(stream);
      for (void* d : q.barrier_deps)
        BRIDGECL_RETURN_IF_ERROR(Seal(cu_.StreamWaitEvent(stream, d),
                                      mocl::CL_OUT_OF_RESOURCES));
    }
    for (void* d : deps)
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cu_.StreamWaitEvent(stream, d), mocl::CL_OUT_OF_RESOURCES));
    BRIDGECL_RETURN_IF_ERROR(Seal(issue(stream), mocl::CL_OUT_OF_RESOURCES));
    if (q.ooo) {
      BRIDGECL_ASSIGN_OR_RETURN(
          void* ce, Seal(cu_.EventCreate(), mocl::CL_OUT_OF_RESOURCES));
      Status st = cu_.EventRecordOnStream(ce, stream);
      if (!st.ok()) {
        (void)cu_.EventDestroy(ce);
        return Seal(std::move(st), mocl::CL_OUT_OF_RESOURCES);
      }
      q.cmd_events.push_back(ce);
    }
    if (out_event != nullptr) {
      BRIDGECL_ASSIGN_OR_RETURN(
          void* ue, Seal(cu_.EventCreate(), mocl::CL_OUT_OF_RESOURCES));
      Status st = cu_.EventRecordOnStream(ue, stream);
      if (!st.ok()) {
        (void)cu_.EventDestroy(ue);
        return Seal(std::move(st), mocl::CL_OUT_OF_RESOURCES);
      }
      uint64_t id = next_id_++;
      EventRec er;
      er.queued_us = queued;
      er.cuda_event = ue;
      event_map_[id] = er;
      *out_event = ClEvent{id};
    }
    if (blocking)
      return Seal(cu_.StreamSynchronize(stream), mocl::CL_OUT_OF_RESOURCES);
    return OkStatus();
  }

  /// Marker event on `q`. An empty wait list on an out-of-order queue
  /// means "everything enqueued so far", which with per-command streams is
  /// a wait on every per-command event.
  StatusOr<ClEvent> MarkerImpl(QueueRec& q, std::span<const ClEvent> wait,
                               double queued) {
    ClEvent ev;
    if (q.ooo && wait.empty()) {
      std::vector<void*> all = q.cmd_events;  // snapshot before the marker
      BRIDGECL_RETURN_IF_ERROR(EnqueueOn(
          q, /*blocking=*/false, queued, {}, &ev, [&](void* stream) {
            for (void* d : all)
              BRIDGECL_RETURN_IF_ERROR(Seal(cu_.StreamWaitEvent(stream, d),
                                            mocl::CL_OUT_OF_RESOURCES));
            return OkStatus();
          }));
      return ev;
    }
    BRIDGECL_RETURN_IF_ERROR(
        EnqueueOn(q, /*blocking=*/false, queued, wait, &ev,
                  [](void*) { return OkStatus(); }));
    return ev;
  }

  /// clFinish semantics for one queue: drain it and surface the first
  /// deferred error. Out-of-order queues also retire their per-command
  /// streams and bookkeeping events here.
  Status DrainQueue(QueueRec& q) {
    Status first;
    if (!q.ooo) {
      first = cu_.StreamSynchronize(q.stream);  // null = default stream
    } else {
      for (void* s : q.cmd_streams) {
        Status st = cu_.StreamSynchronize(s);
        if (first.ok() && !st.ok()) first = std::move(st);
      }
      for (void* s : q.cmd_streams) (void)cu_.StreamDestroy(s);
      for (void* e : q.cmd_events) (void)cu_.EventDestroy(e);
      q.cmd_streams.clear();
      q.cmd_events.clear();
      q.barrier_deps.clear();
    }
    return Seal(std::move(first), mocl::CL_OUT_OF_RESOURCES);
  }

  StatusOr<BufferRec*> FindBuffer(ClMem mem) {
    auto it = buffers_.find(mem.handle);
    if (it == buffers_.end())
      return AsCl(InvalidArgumentError("unknown buffer object"),
                  mocl::CL_INVALID_MEM_OBJECT);
    return &it->second;
  }

  StatusOr<ImageRec*> FindImage(ClMem mem) {
    auto it = images_.find(mem.handle);
    if (it == images_.end())
      return AsCl(InvalidArgumentError("unknown image object"),
                  mocl::CL_INVALID_MEM_OBJECT);
    return &it->second;
  }

  StatusOr<ClMem> MakeImage(MemFlags, const ClImageFormat& format,
                            size_t width, size_t height,
                            const void* host_ptr) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    size_t bytes = width * height * texel;
    if (bytes == 0)
      return AsCl(InvalidArgumentError("image dimensions must be non-zero"),
                  mocl::CL_INVALID_IMAGE_SIZE);
    BRIDGECL_ASSIGN_OR_RETURN(
        void* data,
        Seal(cu_.Malloc(bytes), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE));
    if (host_ptr != nullptr) {
      Status st = cu_.Memcpy(data, host_ptr, bytes, MemcpyKind::kHostToDevice);
      if (!st.ok()) {
        (void)cu_.Free(data);  // don't leak texels on a failed upload
        return Seal(std::move(st), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE);
      }
    }
    auto mem = MakeImageOver(data, /*owns=*/true, format, width, height);
    if (!mem.ok()) (void)cu_.Free(data);
    return mem;
  }

  StatusOr<ClMem> MakeImageOver(void* data, bool owns,
                                const ClImageFormat& format, size_t width,
                                size_t height) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    ImageDesc desc;
    desc.data_va = reinterpret_cast<uint64_t>(data);
    desc.width = static_cast<uint32_t>(width);
    desc.height = static_cast<uint32_t>(height);
    desc.depth = 1;
    desc.channels = static_cast<uint32_t>(format.channels);
    desc.elem_kind = static_cast<uint32_t>(format.elem);
    desc.row_pitch = static_cast<uint32_t>(width * texel);
    desc.slice_pitch = static_cast<uint32_t>(width * height * texel);
    desc.dims = height > 1 ? 2 : 1;
    BRIDGECL_ASSIGN_OR_RETURN(
        void* desc_ptr,
        Seal(cu_.Malloc(sizeof(desc)),
             mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE));
    Status st = cu_.Memcpy(desc_ptr, &desc, sizeof(desc),
                           MemcpyKind::kHostToDevice);
    if (!st.ok()) {
      (void)cu_.Free(desc_ptr);  // descriptor block, not the texels
      return Seal(std::move(st), mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE);
    }
    uint64_t id = next_id_++;
    ImageRec rec;
    rec.desc_ptr = desc_ptr;
    rec.data_ptr = data;  // borrowed when !owns; never freed then
    rec.byte_size = width * height * texel;
    images_[id] = rec;
    owned_image_data_[id] = owns;
    return ClMem{id};
  }

  CudaApi& cu_;
  uint64_t next_id_ = 0x4000'0000'0000'0000ull;  // disjoint from VAs
  std::unordered_map<uint64_t, BufferRec> buffers_;
  std::unordered_map<uint64_t, ImageRec> images_;
  std::unordered_map<uint64_t, bool> owned_image_data_;
  std::unordered_map<uint64_t, ProgramRec> programs_;
  std::unordered_map<uint64_t, std::string> build_log_;
  std::unordered_map<uint64_t, KernelRec> kernels_;
  std::map<uint64_t, QueueRec> queues_;  // ordered: deterministic teardown
  std::unordered_map<uint64_t, EventRec> event_map_;
  uint64_t next_queue_ = 0x4800'0000'0000'0000ull;
  void* t0_ = nullptr;  // lazy absolute-time base (EnsureT0)
  double t0_now_ = 0;   // NowUs() at the instant t0_ completed
};

}  // namespace

std::unique_ptr<OpenClApi> CreateClOnCudaApi(CudaApi& cuda) {
  return std::make_unique<ClOnCudaApi>(cuda);
}

}  // namespace bridgecl::cl2cu
