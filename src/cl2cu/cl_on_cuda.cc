#include "cl2cu/cl_on_cuda.h"

#include <cstring>
#include <unordered_map>

#include "interp/image.h"
#include "support/strings.h"
#include "translator/translate.h"

namespace bridgecl::cl2cu {
namespace {

using interp::ImageDesc;
using mcuda::CudaApi;
using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::ClDeviceAttr;
using mocl::ClImageFormat;
using mocl::ClKernel;
using mocl::ClMem;
using mocl::ClProgram;
using mocl::ClSamplerDesc;
using mocl::MemFlags;
using mocl::OpenClApi;
using translator::KernelTranslationInfo;
using translator::TranslationResult;

constexpr char kConstArena[] = "__OC2CU_const_mem";

size_t Align16(size_t n) { return (n + 15) & ~size_t{15}; }

struct BufferRec {
  void* dev_ptr = nullptr;
  size_t size = 0;
};

struct ImageRec {
  // The CLImage of Figure 6: a descriptor object in CUDA device memory
  // whose `ptr` member points at a CUDA memory object with the texels.
  void* desc_ptr = nullptr;
  void* data_ptr = nullptr;
  size_t byte_size = 0;
};

/// Per-argument marshalling state collected by clSetKernelArg (§3.5: the
/// information cuLaunchKernel needs is gathered at run time).
struct ArgRec {
  enum class Kind { kUnset, kBytes, kDynLocal, kDynConst };
  Kind kind = Kind::kUnset;
  std::vector<std::byte> bytes;   // kBytes: final launch bytes
  size_t local_size = 0;          // kDynLocal
  ClMem const_buffer;             // kDynConst
  size_t const_size = 0;
};

struct ProgramRec {
  std::string source;
  bool built = false;
  TranslationResult translation;
};

struct KernelRec {
  uint64_t program = 0;
  std::string name;
  const KernelTranslationInfo* info = nullptr;
  std::vector<ArgRec> args;
};

class ClOnCudaApi final : public OpenClApi {
 public:
  explicit ClOnCudaApi(CudaApi& cu) : cu_(cu) {}

  std::string PlatformName() const override {
    return "BridgeCL OpenCL-on-CUDA wrapper";
  }

  StatusOr<std::string> QueryDeviceInfoString(ClDeviceAttr attr) override {
    BRIDGECL_ASSIGN_OR_RETURN(mcuda::CudaDeviceProps p,
                              cu_.GetDeviceProperties());
    switch (attr) {
      case ClDeviceAttr::kName:
        return p.name;
      case ClDeviceAttr::kVendor:
        return std::string("BridgeCL (via CUDA wrapper)");
      default:
        return InvalidArgumentError("attribute is not a string");
    }
  }

  StatusOr<uint64_t> QueryDeviceInfoUint(ClDeviceAttr attr) override {
    BRIDGECL_ASSIGN_OR_RETURN(mcuda::CudaDeviceProps p,
                              cu_.GetDeviceProperties());
    switch (attr) {
      case ClDeviceAttr::kMaxComputeUnits:
        return static_cast<uint64_t>(p.multi_processor_count);
      case ClDeviceAttr::kMaxWorkGroupSize:
        return static_cast<uint64_t>(p.max_threads_per_block);
      case ClDeviceAttr::kLocalMemSize:
        return static_cast<uint64_t>(p.shared_mem_per_block);
      case ClDeviceAttr::kGlobalMemSize:
        return static_cast<uint64_t>(p.total_global_mem);
      case ClDeviceAttr::kMaxConstantBufferSize:
        return static_cast<uint64_t>(p.total_const_mem);
      case ClDeviceAttr::kImage2dMaxWidth:
      case ClDeviceAttr::kImage2dMaxHeight:
      case ClDeviceAttr::kImage1dMaxBufferWidth:
        // Image limits on the CUDA side are texture limits.
        return static_cast<uint64_t>(65536);
      case ClDeviceAttr::kMaxClockFrequency:
        return static_cast<uint64_t>(p.clock_rate_khz / 1000);
      default:
        return InvalidArgumentError("attribute is not an integer");
    }
  }

  StatusOr<int> CreateSubDevices(int) override {
    // §3.7: CUDA has no sub-device concept; this wrapper cannot exist.
    return UnimplementedError(
        "clCreateSubDevices has no CUDA counterpart (§3.7)");
  }

  // -- buffers: cl_mem == CUDA device pointer (§4) --------------------------
  StatusOr<ClMem> CreateBuffer(MemFlags, size_t size,
                               const void* host_ptr) override {
    BRIDGECL_ASSIGN_OR_RETURN(void* p, cu_.Malloc(size));
    if (host_ptr != nullptr)
      BRIDGECL_RETURN_IF_ERROR(
          cu_.Memcpy(p, host_ptr, size, MemcpyKind::kHostToDevice));
    ClMem mem{reinterpret_cast<uint64_t>(p)};  // the paper's handle cast
    buffers_[mem.handle] = BufferRec{p, size};
    return mem;
  }

  Status ReleaseMemObject(ClMem mem) override {
    if (auto it = buffers_.find(mem.handle); it != buffers_.end()) {
      BRIDGECL_RETURN_IF_ERROR(cu_.Free(it->second.dev_ptr));
      buffers_.erase(it);
      return OkStatus();
    }
    if (auto it = images_.find(mem.handle); it != images_.end()) {
      if (owned_image_data_[mem.handle])
        BRIDGECL_RETURN_IF_ERROR(cu_.Free(it->second.data_ptr));
      BRIDGECL_RETURN_IF_ERROR(cu_.Free(it->second.desc_ptr));
      owned_image_data_.erase(mem.handle);
      images_.erase(it);
      return OkStatus();
    }
    return InvalidArgumentError("unknown memory object");
  }

  Status EnqueueWriteBuffer(ClMem mem, size_t offset, size_t size,
                            const void* src) override {
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return OutOfRangeError("write beyond buffer end");
    return cu_.Memcpy(static_cast<std::byte*>(b->dev_ptr) + offset, src,
                      size, MemcpyKind::kHostToDevice);
  }

  Status EnqueueReadBuffer(ClMem mem, size_t offset, size_t size,
                           void* dst) override {
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return OutOfRangeError("read beyond buffer end");
    return cu_.Memcpy(dst, static_cast<std::byte*>(b->dev_ptr) + offset,
                      size, MemcpyKind::kDeviceToHost);
  }

  Status EnqueueCopyBuffer(ClMem src, ClMem dst, size_t src_offset,
                           size_t dst_offset, size_t size) override {
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * s, FindBuffer(src));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * d, FindBuffer(dst));
    return cu_.Memcpy(static_cast<std::byte*>(d->dev_ptr) + dst_offset,
                      static_cast<std::byte*>(s->dev_ptr) + src_offset, size,
                      MemcpyKind::kDeviceToDevice);
  }

  // -- images (§5: CLImage objects in CUDA memory) ---------------------------
  StatusOr<ClMem> CreateImage2D(MemFlags flags, const ClImageFormat& format,
                                size_t width, size_t height,
                                const void* host_ptr) override {
    return MakeImage(flags, format, width, height, host_ptr);
  }

  StatusOr<ClMem> CreateImage1D(MemFlags flags, const ClImageFormat& format,
                                size_t width, const void* host_ptr) override {
    return MakeImage(flags, format, width, 1, host_ptr);
  }

  StatusOr<ClMem> CreateImage1DFromBuffer(const ClImageFormat& format,
                                          size_t width,
                                          ClMem buffer) override {
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(buffer));
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    if (width * texel > b->size)
      return OutOfRangeError("image view larger than the backing buffer");
    return MakeImageOver(b->dev_ptr, /*owns=*/false, format, width, 1);
  }

  Status EnqueueWriteImage(ClMem image, const void* src) override {
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    return cu_.Memcpy(img->data_ptr, src, img->byte_size,
                      MemcpyKind::kHostToDevice);
  }

  Status EnqueueReadImage(ClMem image, void* dst) override {
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    return cu_.Memcpy(dst, img->data_ptr, img->byte_size,
                      MemcpyKind::kDeviceToHost);
  }

  StatusOr<uint64_t> CreateSampler(const ClSamplerDesc& desc) override {
    uint64_t bits = 0;
    if (desc.normalized_coords) bits |= interp::kSamplerNormalizedCoords;
    if (desc.address_clamp) bits |= interp::kSamplerAddressClamp;
    if (desc.filter_linear) bits |= interp::kSamplerFilterLinear;
    return bits;
  }

  // -- programs: run-time translation + nvcc (Figure 2) ----------------------
  StatusOr<ClProgram> CreateProgramWithSource(
      const std::string& source) override {
    uint64_t id = next_id_++;
    programs_[id].source = source;
    return ClProgram{id};
  }

  Status BuildProgram(ClProgram program) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end()) return InvalidArgumentError("unknown program");
    DiagnosticEngine diags;
    auto tr = translator::TranslateOpenClToCuda(it->second.source, diags);
    if (!tr.ok()) {
      build_log_[program.handle] = diags.ToString();
      return tr.status();
    }
    Status st = cu_.RegisterModule(tr->source);  // "nvcc" + cuModuleLoad
    if (!st.ok()) {
      build_log_[program.handle] = st.ToString();
      return st;
    }
    it->second.translation = std::move(*tr);
    it->second.built = true;
    return OkStatus();
  }

  StatusOr<std::string> GetProgramBuildLog(ClProgram program) override {
    auto it = build_log_.find(program.handle);
    return it == build_log_.end() ? std::string() : it->second;
  }

  StatusOr<ClKernel> CreateKernel(ClProgram program,
                                  const std::string& name) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end()) return InvalidArgumentError("unknown program");
    if (!it->second.built)
      return FailedPreconditionError("program is not built");
    const KernelTranslationInfo* info = it->second.translation.Find(name);
    if (info == nullptr)
      return NotFoundError("no kernel '" + name + "' in program");
    uint64_t id = next_id_++;
    KernelRec& k = kernels_[id];
    k.program = program.handle;
    k.name = name;
    k.info = info;
    k.args.resize(info->original_param_count);
    return ClKernel{id};
  }

  Status SetKernelArg(ClKernel kernel, int index, size_t size,
                      const void* value) override {
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end()) return InvalidArgumentError("unknown kernel");
    KernelRec& k = it->second;
    if (index < 0 || index >= static_cast<int>(k.args.size()))
      return OutOfRangeError("kernel argument index out of range");
    using Role = KernelTranslationInfo::ParamRole;
    Role role = k.info->param_roles[index];
    ArgRec& arg = k.args[index];
    if (role == Role::kDynLocalSize) {
      if (value != nullptr)
        return InvalidArgumentError(
            "dynamic __local argument must have a null value");
      arg.kind = ArgRec::Kind::kDynLocal;
      arg.local_size = size;
      return OkStatus();
    }
    if (role == Role::kDynConstSize) {
      if (value == nullptr || size != sizeof(ClMem))
        return InvalidArgumentError(
            "__constant pointer argument must be a memory object");
      ClMem mem;
      std::memcpy(&mem, value, sizeof(mem));
      BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
      arg.kind = ArgRec::Kind::kDynConst;
      arg.const_buffer = mem;
      arg.const_size = b->size;
      return OkStatus();
    }
    if (value == nullptr)
      return InvalidArgumentError("null value on a non-__local argument");
    // Memory objects, images, samplers and plain data all marshal as raw
    // bytes. For image parameters (known from the translation metadata,
    // never guessed from the handle value) the cl_mem handle is replaced
    // by the CLImage descriptor pointer (§5, Fig 6); buffer handles need
    // no rewrite because the handle *is* the device pointer (§4).
    std::vector<std::byte> bytes(size);
    std::memcpy(bytes.data(), value, size);
    if (index < static_cast<int>(k.info->param_is_image.size()) &&
        k.info->param_is_image[index]) {
      if (size != sizeof(ClMem))
        return InvalidArgumentError("image argument size mismatch");
      ClMem handle;
      std::memcpy(&handle, value, sizeof(handle));
      auto img = images_.find(handle.handle);
      if (img == images_.end())
        return InvalidArgumentError("argument is not an image object");
      void* desc = img->second.desc_ptr;
      std::memcpy(bytes.data(), &desc, sizeof(desc));
    }
    arg.kind = ArgRec::Kind::kBytes;
    arg.bytes = std::move(bytes);
    return OkStatus();
  }

  Status EnqueueNDRangeKernel(ClKernel kernel, int work_dim,
                              const size_t* gws, const size_t* lws) override {
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end()) return InvalidArgumentError("unknown kernel");
    KernelRec& k = it->second;
    // NDRange → grid (§3.5).
    simgpu::Dim3 g(1, 1, 1), l(1, 1, 1);
    uint32_t* gp[3] = {&g.x, &g.y, &g.z};
    uint32_t* lp[3] = {&l.x, &l.y, &l.z};
    for (int d = 0; d < work_dim; ++d) {
      *gp[d] = static_cast<uint32_t>(gws[d]);
      *lp[d] = lws != nullptr ? static_cast<uint32_t>(lws[d])
                              : std::min<uint32_t>(*gp[d], 64);
    }
    simgpu::Dim3 grid;
    if (!simgpu::NdrangeToGrid(g, l, &grid))
      return InvalidArgumentError(
          "global work size is not a multiple of the local work size");

    // Marshal arguments in original order; dynamic local/constant params
    // became size_t parameters (Fig 5).
    std::vector<LaunchArg> args;
    size_t shared_total = 0;
    size_t const_offset = 0;
    for (size_t i = 0; i < k.args.size(); ++i) {
      const ArgRec& a = k.args[i];
      switch (a.kind) {
        case ArgRec::Kind::kUnset:
          return FailedPreconditionError(
              StrFormat("kernel '%s': argument %zu was never set",
                        k.name.c_str(), i));
        case ArgRec::Kind::kBytes: {
          LaunchArg la;
          la.bytes = a.bytes;
          args.push_back(std::move(la));
          break;
        }
        case ArgRec::Kind::kDynLocal: {
          size_t aligned = Align16(a.local_size);
          shared_total += aligned;
          args.push_back(LaunchArg::Value<size_t>(aligned));
          break;
        }
        case ArgRec::Kind::kDynConst: {
          // §4.2: the buffer contents move into the constant arena when
          // the kernel launches (the deferred copy).
          size_t aligned = Align16(a.const_size);
          BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b,
                                    FindBuffer(a.const_buffer));
          std::vector<std::byte> staging(a.const_size);
          BRIDGECL_RETURN_IF_ERROR(cu_.Memcpy(staging.data(), b->dev_ptr,
                                              a.const_size,
                                              MemcpyKind::kDeviceToHost));
          BRIDGECL_RETURN_IF_ERROR(cu_.MemcpyToSymbol(
              kConstArena, staging.data(), a.const_size, const_offset));
          args.push_back(LaunchArg::Value<size_t>(aligned));
          const_offset += aligned;
          break;
        }
      }
    }
    return cu_.LaunchKernel(k.name, grid, l, shared_total, args);
  }

  Status Finish() override { return cu_.DeviceSynchronize(); }

  StatusOr<mocl::ClEvent> EnqueueNDRangeKernelWithEvent(
      ClKernel kernel, int work_dim, const size_t* gws,
      const size_t* lws) override {
    // Wrapper implementation over CUDA events (cuEventRecord pairs).
    double queued = cu_.NowUs();
    BRIDGECL_RETURN_IF_ERROR(
        EnqueueNDRangeKernel(kernel, work_dim, gws, lws));
    uint64_t id = next_id_++;
    event_times_[id] = {queued, cu_.NowUs()};
    return mocl::ClEvent{id};
  }

  Status GetEventProfiling(mocl::ClEvent event, double* queued_us,
                           double* end_us) override {
    auto it = event_times_.find(event.handle);
    if (it == event_times_.end())
      return InvalidArgumentError("unknown event");
    *queued_us = it->second.first;
    *end_us = it->second.second;
    return OkStatus();
  }

  Status SetProgramKernelRegisters(ClProgram program,
                                   const std::string& kernel,
                                   int regs) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end()) return InvalidArgumentError("unknown program");
    if (!it->second.built)
      return FailedPreconditionError("program is not built");
    return cu_.SetKernelRegisters(kernel, regs);
  }

  double NowUs() const override { return cu_.NowUs(); }
  /// The run-time translate+nvcc pipeline (Fig 2) is host-side work that
  /// never enters the simulated device clock, so nothing needs excluding:
  /// NowUs() already reports build-free time.
  double BuildTimeUs() const override { return 0; }

 private:
  StatusOr<BufferRec*> FindBuffer(ClMem mem) {
    auto it = buffers_.find(mem.handle);
    if (it == buffers_.end())
      return InvalidArgumentError("unknown buffer object");
    return &it->second;
  }

  StatusOr<ImageRec*> FindImage(ClMem mem) {
    auto it = images_.find(mem.handle);
    if (it == images_.end())
      return InvalidArgumentError("unknown image object");
    return &it->second;
  }

  StatusOr<ClMem> MakeImage(MemFlags, const ClImageFormat& format,
                            size_t width, size_t height,
                            const void* host_ptr) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    size_t bytes = width * height * texel;
    BRIDGECL_ASSIGN_OR_RETURN(void* data, cu_.Malloc(bytes));
    if (host_ptr != nullptr)
      BRIDGECL_RETURN_IF_ERROR(
          cu_.Memcpy(data, host_ptr, bytes, MemcpyKind::kHostToDevice));
    return MakeImageOver(data, /*owns=*/true, format, width, height);
  }

  StatusOr<ClMem> MakeImageOver(void* data, bool owns,
                                const ClImageFormat& format, size_t width,
                                size_t height) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    ImageDesc desc;
    desc.data_va = reinterpret_cast<uint64_t>(data);
    desc.width = static_cast<uint32_t>(width);
    desc.height = static_cast<uint32_t>(height);
    desc.depth = 1;
    desc.channels = static_cast<uint32_t>(format.channels);
    desc.elem_kind = static_cast<uint32_t>(format.elem);
    desc.row_pitch = static_cast<uint32_t>(width * texel);
    desc.slice_pitch = static_cast<uint32_t>(width * height * texel);
    desc.dims = height > 1 ? 2 : 1;
    BRIDGECL_ASSIGN_OR_RETURN(void* desc_ptr, cu_.Malloc(sizeof(desc)));
    BRIDGECL_RETURN_IF_ERROR(cu_.Memcpy(desc_ptr, &desc, sizeof(desc),
                                        MemcpyKind::kHostToDevice));
    uint64_t id = next_id_++;
    ImageRec rec;
    rec.desc_ptr = desc_ptr;
    rec.data_ptr = data;  // borrowed when !owns; never freed then
    rec.byte_size = width * height * texel;
    images_[id] = rec;
    owned_image_data_[id] = owns;
    return ClMem{id};
  }

  CudaApi& cu_;
  uint64_t next_id_ = 0x4000'0000'0000'0000ull;  // disjoint from VAs
  std::unordered_map<uint64_t, BufferRec> buffers_;
  std::unordered_map<uint64_t, ImageRec> images_;
  std::unordered_map<uint64_t, bool> owned_image_data_;
  std::unordered_map<uint64_t, ProgramRec> programs_;
  std::unordered_map<uint64_t, std::string> build_log_;
  std::unordered_map<uint64_t, KernelRec> kernels_;
  std::unordered_map<uint64_t, std::pair<double, double>> event_times_;
};

}  // namespace

std::unique_ptr<OpenClApi> CreateClOnCudaApi(CudaApi& cuda) {
  return std::make_unique<ClOnCudaApi>(cuda);
}

}  // namespace bridgecl::cl2cu
