// The paper's OpenCL→CUDA wrapper library (§3.4 Figure 2): every OpenCL
// host API function is implemented as a wrapper over the mini-CUDA API.
// clBuildProgram() invokes the OpenCL→CUDA source-to-source translator at
// run time, then "nvcc" (the mini-CUDA module compiler). Handle types
// propagate by value through the void*-compatible payloads (§4): a cl_mem
// on this binding *is* a CUDA device pointer.
#pragma once

#include <memory>

#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"

namespace bridgecl::cl2cu {

/// Create an OpenClApi whose every call is serviced by `cuda`. The
/// returned object borrows `cuda`; it must outlive the wrapper.
std::unique_ptr<mocl::OpenClApi> CreateClOnCudaApi(mcuda::CudaApi& cuda);

}  // namespace bridgecl::cl2cu
