// Shared AST-rewriting machinery for both translation directions:
// generic expression/statement walkers with node replacement, type
// substitution, and component extraction for swizzle expansion.
#pragma once

#include <functional>

#include "lang/ast.h"
#include "support/status.h"

namespace bridgecl::translator {

/// Visit every expression in a statement tree bottom-up. The callback may
/// replace the node by assigning a new expression to the ExprPtr slot it
/// receives (the slot already holds the visited node). Returning a non-ok
/// status aborts the walk.
using ExprMutator = std::function<Status(lang::ExprPtr& slot)>;

Status MutateExprs(lang::Stmt* stmt, const ExprMutator& fn);
Status MutateExprs(lang::ExprPtr& expr, const ExprMutator& fn);

/// Visit every statement slot in a tree bottom-up (compound bodies, loop
/// bodies, branches). The callback may replace the statement.
using StmtMutator = std::function<Status(lang::StmtPtr& slot)>;
Status MutateStmts(lang::StmtPtr& stmt, const StmtMutator& fn);

/// Walk every VarDecl in a statement tree (declarations only).
using VarVisitor = std::function<Status(lang::VarDecl* var)>;
Status VisitVarDecls(lang::Stmt* stmt, const VarVisitor& fn);

/// Structurally replace types for which `match` returns a replacement,
/// recursing through pointers and arrays.
using TypeReplacer =
    std::function<lang::Type::Ptr(const lang::Type::Ptr&)>;  // null = keep
lang::Type::Ptr ReplaceType(const lang::Type::Ptr& t, const TypeReplacer& fn);

/// Apply `fn` to the declared type of every VarDecl/param/field/cast/sizeof
/// in the translation unit.
Status ReplaceTypesEverywhere(lang::TranslationUnit& tu,
                              const TypeReplacer& fn);

/// Extract component `i` of a vector-typed expression as a scalar
/// expression, duplicating subtrees as needed. Handles DeclRef, Member
/// (incl. swizzles), Index, Paren, VectorLit, literals (broadcast),
/// Binary, Unary, and Conditional. Returns null when the expression is
/// too complex to expand (caller falls back to a temporary).
lang::ExprPtr ExtractComponent(const lang::Expr& e, int i);

/// True if the expression tree contains a call (side effects possible).
bool ContainsCall(const lang::Expr& e);

}  // namespace bridgecl::translator
