// CUDA → OpenCL device-code translation (§3.4 Figure 3, §3.6, §4, §5).
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "lang/builtins.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/sema.h"
#include "support/strings.h"
#include "translator/rewrite_util.h"
#include "translator/translate.h"

namespace bridgecl::translator {

using namespace bridgecl::lang;  // NOLINT: rewriters are lang-dense

namespace {

/// atomic_cmpxchg-based emulation of CUDA's wrap-around atomics — an
/// opt-in extension beyond the paper (which classifies them as
/// untranslatable, Table 3 "no corresponding functions").
constexpr char kAtomicEmulationHelpers[] = R"(
uint __cu2cl_atomicInc(volatile __global uint* p, uint limit) {
  uint old;
  uint next;
  do {
    old = *p;
    next = (old >= limit) ? 0u : (old + 1u);
  } while (atomic_cmpxchg((volatile __global uint*)p, old, next) != old);
  return old;
}
uint __cu2cl_atomicDec(volatile __global uint* p, uint limit) {
  uint old;
  uint next;
  do {
    old = *p;
    next = (old == 0u || old > limit) ? limit : (old - 1u);
  } while (atomic_cmpxchg((volatile __global uint*)p, old, next) != old);
  return old;
}
)";

class CuToCl {
 public:
  CuToCl(TranslationUnit& tu, DiagnosticEngine& diags,
         const TranslateOptions& opts)
      : tu_(tu), diags_(diags), opts_(opts) {}

  StatusOr<TranslationResult> Run() {
    // Record original parameter counts before any pass appends parameters.
    FinalizeKernelInfos();
    BRIDGECL_RETURN_IF_ERROR(SpecializeTemplates());
    BRIDGECL_RETURN_IF_ERROR(LowerReferences());
    BRIDGECL_RETURN_IF_ERROR(CheckKernelParams());
    BRIDGECL_RETURN_IF_ERROR(RewriteBuiltinsAndVars());
    BRIDGECL_RETURN_IF_ERROR(LowerOneComponentVectors());
    BRIDGECL_RETURN_IF_ERROR(LowerLongLong());
    BRIDGECL_RETURN_IF_ERROR(RewriteDynamicShared());
    BRIDGECL_RETURN_IF_ERROR(RewriteTextures());
    BRIDGECL_RETURN_IF_ERROR(RewriteStaticSymbols());
    BRIDGECL_RETURN_IF_ERROR(SpecializeFunctionSpaces());
    BRIDGECL_RETURN_IF_ERROR(SplitMultiSpacePointers());
    FinalizeKernelInfos();

    TranslationResult result;
    PrintOptions popts;
    popts.dialect = Dialect::kOpenCL;
    result.source = PrintTranslationUnit(tu_, popts);
    if (used_atomic_emulation_)
      result.source = std::string(kAtomicEmulationHelpers) + result.source;
    result.kernels = std::move(kernels_);
    return result;
  }

 private:
  Status Untranslatable(SourceLoc loc, const std::string& what) {
    diags_.Error(loc, "untranslatable to OpenCL: " + what);
    return UntranslatableError(what);
  }

  KernelTranslationInfo& InfoFor(const FunctionDecl& fn) {
    for (auto& k : kernels_)
      if (k.name == fn.name) return k;
    KernelTranslationInfo info;
    info.name = fn.name;
    info.original_param_count = static_cast<int>(fn.params.size());
    kernels_.push_back(std::move(info));
    return kernels_.back();
  }

  Status ForEachBody(const std::function<Status(FunctionDecl&)>& fn) {
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      if (f->body) BRIDGECL_RETURN_IF_ERROR(fn(*f));
    }
    return OkStatus();
  }

  // ---- pass 1: template specialization (§3.6: "a template function is
  // specialized") ----
  Status SpecializeTemplates() {
    std::unordered_map<std::string, FunctionDecl*> templates;
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      if (!f->template_params.empty()) {
        if (f->quals.is_kernel)
          return Untranslatable(
              f->loc, "templated __global__ kernel '" + f->name +
                          "' (OpenCL 1.2 has no templates and the host "
                          "cannot name a specialization to launch)");
        templates[f->name] = f;
      }
    }
    if (templates.empty()) return OkStatus();

    std::map<std::pair<std::string, std::string>, std::string> instances;
    std::vector<DeclPtr> new_decls;

    auto mangle = [](const Type::Ptr& t) {
      std::string s = t->ToString();
      for (char& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    };

    auto fix = [&](ExprPtr& e) -> Status {
      if (e->kind != ExprKind::kCall) return OkStatus();
      auto* c = e->As<CallExpr>();
      std::string name = c->callee_name();
      auto it = templates.find(name);
      if (it == templates.end()) return OkStatus();
      if (c->type_args.empty())
        return Untranslatable(e->loc,
                              "template call '" + name +
                                  "' without explicit type arguments");
      FunctionDecl* tmpl = it->second;
      if (c->type_args.size() != tmpl->template_params.size())
        return Untranslatable(e->loc, "template argument count mismatch");
      std::string key;
      for (const auto& t : c->type_args) key += "_" + mangle(t);
      auto ikey = std::make_pair(name, key);
      auto found = instances.find(ikey);
      std::string spec_name;
      if (found != instances.end()) {
        spec_name = found->second;
      } else {
        spec_name = name + key;
        instances[ikey] = spec_name;
        // Clone and substitute.
        auto clone = std::make_unique<FunctionDecl>();
        clone->loc = tmpl->loc;
        clone->name = spec_name;
        clone->quals = tmpl->quals;
        clone->return_type = tmpl->return_type;
        clone->return_type_spelling = tmpl->return_type_spelling;
        for (auto& p : tmpl->params)
          clone->params.push_back(CloneVarDecl(*p));
        clone->param_is_reference = tmpl->param_is_reference;
        clone->body.reset(
            static_cast<CompoundStmt*>(CloneStmt(*tmpl->body).release()));
        std::unordered_map<std::string, Type::Ptr> bind;
        for (size_t i = 0; i < tmpl->template_params.size(); ++i)
          bind[tmpl->template_params[i].name] = c->type_args[i];
        auto subst = [&](const Type::Ptr& t) -> Type::Ptr {
          if (t && t->is_named()) {
            auto b = bind.find(t->name());
            if (b != bind.end()) return b->second;
          }
          return nullptr;
        };
        clone->return_type = ReplaceType(clone->return_type, subst);
        for (auto& p : clone->params) p->type = ReplaceType(p->type, subst);
        auto fix_var = [&](VarDecl* v) -> Status {
          v->type = ReplaceType(v->type, subst);
          return OkStatus();
        };
        BRIDGECL_RETURN_IF_ERROR(VisitVarDecls(clone->body.get(), fix_var));
        BRIDGECL_RETURN_IF_ERROR(
            MutateExprs(clone->body.get(), [&](ExprPtr& ex) -> Status {
              if (ex->kind == ExprKind::kCast) {
                auto* cast = ex->As<CastExpr>();
                cast->target = ReplaceType(cast->target, subst);
              } else if (ex->kind == ExprKind::kSizeof) {
                auto* sz = ex->As<SizeofExpr>();
                if (sz->arg_type)
                  sz->arg_type = ReplaceType(sz->arg_type, subst);
              }
              return OkStatus();
            }));
        new_decls.push_back(std::move(clone));
      }
      c->callee = MakeRef(spec_name);
      c->type_args.clear();
      return OkStatus();
    };
    BRIDGECL_RETURN_IF_ERROR(ForEachBody([&](FunctionDecl& fn) {
      if (!fn.template_params.empty()) return OkStatus();
      return MutateExprs(fn.body.get(), fix);
    }));
    // Insert specializations before the first function and drop templates.
    std::vector<DeclPtr> rebuilt;
    bool inserted = false;
    for (auto& d : tu_.decls) {
      if (d->kind == DeclKind::kFunction) {
        if (!inserted) {
          for (auto& nd : new_decls) rebuilt.push_back(std::move(nd));
          inserted = true;
        }
        if (!d->As<FunctionDecl>()->template_params.empty()) continue;
      }
      rebuilt.push_back(std::move(d));
    }
    if (!inserted)
      for (auto& nd : new_decls) rebuilt.push_back(std::move(nd));
    tu_.decls = std::move(rebuilt);
    return OkStatus();
  }

  // ---- pass 2: C++ references → pointers (§3.6) ----
  Status LowerReferences() {
    // Collect (function name, param index) with references.
    std::unordered_map<std::string, std::vector<int>> ref_params;
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      for (size_t i = 0; i < f->param_is_reference.size(); ++i)
        if (f->param_is_reference[i])
          ref_params[f->name].push_back(static_cast<int>(i));
    }
    if (ref_params.empty()) return OkStatus();

    // Rewrite declarations and bodies.
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      auto it = ref_params.find(f->name);
      if (it != ref_params.end()) {
        std::unordered_set<std::string> names;
        for (int i : it->second) {
          VarDecl* p = f->params[i].get();
          p->type = Type::Pointer(p->type, AddressSpace::kPrivate);
          names.insert(p->name);
        }
        std::fill(f->param_is_reference.begin(),
                  f->param_is_reference.end(), false);
        // Wrap uses in (*name).
        BRIDGECL_RETURN_IF_ERROR(
            MutateExprs(f->body.get(), [&](ExprPtr& e) -> Status {
              if (e->kind != ExprKind::kDeclRef) return OkStatus();
              auto* r = e->As<DeclRefExpr>();
              if (!names.count(r->name) || r->var == nullptr ||
                  !r->var->is_param)
                return OkStatus();
              auto deref = std::make_unique<UnaryExpr>();
              deref->op = UnaryOp::kDeref;
              deref->type = e->type;
              deref->operand = std::move(e);
              auto paren = std::make_unique<ParenExpr>();
              paren->type = deref->type;
              paren->inner = std::move(deref);
              e = std::move(paren);
              return OkStatus();
            }));
      }
    }
    // Rewrite call sites: pass &arg.
    return ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), [&](ExprPtr& e) -> Status {
        if (e->kind != ExprKind::kCall) return OkStatus();
        auto* c = e->As<CallExpr>();
        auto it = ref_params.find(c->callee_name());
        if (it == ref_params.end()) return OkStatus();
        for (int i : it->second) {
          if (i >= static_cast<int>(c->args.size())) continue;
          // The argument was rewritten to (*x) if it itself is a lowered
          // reference param; &(*x) simplifies to x.
          if (c->args[i]->kind == ExprKind::kParen &&
              c->args[i]->As<ParenExpr>()->inner->kind == ExprKind::kUnary &&
              c->args[i]->As<ParenExpr>()->inner->As<UnaryExpr>()->op ==
                  UnaryOp::kDeref) {
            c->args[i] = std::move(c->args[i]
                                       ->As<ParenExpr>()
                                       ->inner->As<UnaryExpr>()
                                       ->operand);
            continue;
          }
          auto addr = std::make_unique<UnaryExpr>();
          addr->op = UnaryOp::kAddrOf;
          addr->operand = std::move(c->args[i]);
          c->args[i] = std::move(addr);
        }
        return OkStatus();
      });
    });
  }

  // ---- pass 3: kernel parameter checks (heartwall, §6.3) ----
  Status CheckKernelParams() {
    auto has_pointer_field = [](const StructDecl* sd,
                                auto&& self) -> bool {
      for (const StructField& f : sd->fields) {
        Type::Ptr t = f.type;
        while (t && t->is_array()) t = t->element();
        if (t && t->is_pointer()) return true;
        if (t && t->is_struct() && self(t->struct_decl(), self)) return true;
      }
      return false;
    };
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      if (!f->quals.is_kernel) continue;
      for (auto& p : f->params) {
        if (p->type && p->type->is_struct() &&
            has_pointer_field(p->type->struct_decl(), has_pointer_field)) {
          return Untranslatable(
              p->loc,
              "kernel parameter '" + p->name +
                  "' is a struct containing device pointers; their address "
                  "spaces cannot be expressed in OpenCL 1.2 (the heartwall "
                  "case)");
        }
      }
    }
    return OkStatus();
  }

  // ---- pass 4: built-in variables and functions ----
  Status RewriteBuiltinsAndVars() {
    auto fix = [&](ExprPtr& e) -> Status {
      // threadIdx.x → get_local_id(0) etc.
      if (e->kind == ExprKind::kMember) {
        auto* m = e->As<MemberExpr>();
        if (m->base->kind == ExprKind::kDeclRef) {
          auto* r = m->base->As<DeclRefExpr>();
          if (r->is_builtin && m->is_swizzle && m->swizzle.size() == 1) {
            const std::string& n = r->name;
            const char* repl = n == "threadIdx"  ? "get_local_id"
                               : n == "blockIdx" ? "get_group_id"
                               : n == "blockDim" ? "get_local_size"
                               : n == "gridDim"  ? "get_num_groups"
                                                 : nullptr;
            if (repl != nullptr) {
              std::vector<ExprPtr> args;
              args.push_back(MakeIntLit(m->swizzle[0]));
              auto call = MakeCall(repl, std::move(args));
              call->type = Type::SizeTy();
              call->loc = e->loc;
              e = std::move(call);
              return OkStatus();
            }
          }
        }
      }
      if (e->kind == ExprKind::kDeclRef) {
        auto* r = e->As<DeclRefExpr>();
        if (r->is_builtin && r->name == "warpSize")
          return Untranslatable(e->loc,
                                "warpSize (no OpenCL counterpart, §3.7)");
      }
      // C++ casts → C casts (§3.6).
      if (e->kind == ExprKind::kCast) {
        e->As<CastExpr>()->style = CastStyle::kCStyle;
        return OkStatus();
      }
      if (e->kind != ExprKind::kCall) return OkStatus();
      auto* c = e->As<CallExpr>();
      std::string name = c->callee_name();
      if (name.empty()) {
        return Untranslatable(e->loc,
                              "indirect call through a function pointer");
      }

      // Model-specific CUDA built-ins (§3.7 / Table 3).
      static const std::unordered_set<std::string> kNoCounterpart = {
          "__shfl", "__shfl_up", "__shfl_down", "__shfl_xor", "__all",
          "__any",  "__ballot",  "clock",       "clock64",    "assert",
          "printf", "__prof_trigger",
      };
      if (kNoCounterpart.count(name))
        return Untranslatable(
            e->loc, "'" + name + "' has no corresponding OpenCL function");

      if (name == "atomicInc" || name == "atomicDec") {
        if (!opts_.allow_atomic_emulation)
          return Untranslatable(
              e->loc,
              "'" + name +
                  "' wrap-around semantics differ from OpenCL "
                  "atomic_inc/atomic_dec (§3.7); enable atomic emulation "
                  "to translate");
        used_atomic_emulation_ = true;
        c->callee = MakeRef("__cu2cl_" + name);
        return OkStatus();
      }

      if (name == "__syncthreads") {
        c->callee = MakeRef("barrier");
        auto flag = MakeRef("CLK_LOCAL_MEM_FENCE");
        flag->is_builtin = true;
        c->args.clear();
        c->args.push_back(std::move(flag));
        return OkStatus();
      }
      if (name == "__threadfence" || name == "__threadfence_block") {
        c->callee = MakeRef("mem_fence");
        auto flag = MakeRef(name == "__threadfence" ? "CLK_GLOBAL_MEM_FENCE"
                                                    : "CLK_LOCAL_MEM_FENCE");
        flag->is_builtin = true;
        c->args.clear();
        c->args.push_back(std::move(flag));
        return OkStatus();
      }

      static const std::unordered_map<std::string, std::string> kRename = {
          {"sqrtf", "sqrt"},     {"rsqrtf", "rsqrt"},
          {"expf", "exp"},       {"exp2f", "exp2"},
          {"logf", "log"},       {"log2f", "log2"},
          {"log10f", "log10"},   {"sinf", "sin"},
          {"cosf", "cos"},       {"tanf", "tan"},
          {"asinf", "asin"},     {"acosf", "acos"},
          {"atanf", "atan"},     {"atan2f", "atan2"},
          {"fabsf", "fabs"},     {"floorf", "floor"},
          {"ceilf", "ceil"},     {"fminf", "fmin"},
          {"fmaxf", "fmax"},     {"fmodf", "fmod"},
          {"powf", "pow"},       {"fmaf", "fma"},
          {"__expf", "native_exp"},   {"__logf", "native_log"},
          {"__sinf", "native_sin"},   {"__cosf", "native_cos"},
          {"__fdividef", "native_divide"},
          {"__mul24", "mul24"},  {"__popc", "popcount"},
          {"__clz", "clz"},
          {"atomicAdd", "atomic_add"}, {"atomicSub", "atomic_sub"},
          {"atomicExch", "atomic_xchg"}, {"atomicCAS", "atomic_cmpxchg"},
          {"atomicMin", "atomic_min"}, {"atomicMax", "atomic_max"},
          {"atomicAnd", "atomic_and"}, {"atomicOr", "atomic_or"},
          {"atomicXor", "atomic_xor"},
      };
      if (auto it = kRename.find(name); it != kRename.end()) {
        c->callee = MakeRef(it->second);
        return OkStatus();
      }

      // make_floatN(...) → (floatN)(...) vector literal; make_float1 → cast.
      if (StartsWith(name, "make_")) {
        ScalarKind ek;
        int w;
        if (ParseVectorTypeName(name.substr(5), &ek, &w)) {
          if (ek == ScalarKind::kLongLong) ek = ScalarKind::kLong;
          if (ek == ScalarKind::kULongLong) ek = ScalarKind::kULong;
          if (w == 1) {
            auto cast = std::make_unique<CastExpr>();
            cast->style = CastStyle::kCStyle;
            cast->target = Type::Scalar(ek);
            cast->operand = std::move(c->args[0]);
            cast->loc = e->loc;
            e = std::move(cast);
            return OkStatus();
          }
          auto lit = std::make_unique<VectorLitExpr>();
          lit->vec_type = Type::Vector(ek, w);
          lit->elems = std::move(c->args);
          lit->type = lit->vec_type;
          lit->loc = e->loc;
          e = std::move(lit);
          return OkStatus();
        }
      }
      return OkStatus();
    };
    return ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), fix);
    });
  }

  // ---- pass 5: one-component vectors → scalars (§3.6) ----
  Status LowerOneComponentVectors() {
    // Remove `.x` on width-1 vector values first.
    BRIDGECL_RETURN_IF_ERROR(ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), [&](ExprPtr& e) -> Status {
        if (e->kind != ExprKind::kMember) return OkStatus();
        auto* m = e->As<MemberExpr>();
        if (m->is_swizzle && m->base->type &&
            m->base->type->is_vector() &&
            m->base->type->vector_width() == 1) {
          e = std::move(m->base);
        }
        return OkStatus();
      });
    }));
    auto replace = [&](const Type::Ptr& t) -> Type::Ptr {
      if (t && t->is_vector() && t->vector_width() == 1)
        return Type::Scalar(t->scalar_kind());
      return nullptr;
    };
    return ReplaceTypesEverywhere(tu_, replace);
  }

  // ---- pass 6: longlong → long (§3.6: same size on the device) ----
  Status LowerLongLong() {
    auto replace = [&](const Type::Ptr& t) -> Type::Ptr {
      if (!t) return nullptr;
      auto map = [](ScalarKind k) {
        if (k == ScalarKind::kLongLong) return ScalarKind::kLong;
        if (k == ScalarKind::kULongLong) return ScalarKind::kULong;
        return k;
      };
      if (t->is_scalar() && map(t->scalar_kind()) != t->scalar_kind())
        return Type::Scalar(map(t->scalar_kind()));
      if (t->is_vector() && map(t->scalar_kind()) != t->scalar_kind())
        return Type::Vector(map(t->scalar_kind()), t->vector_width());
      return nullptr;
    };
    return ReplaceTypesEverywhere(tu_, replace);
  }

  // ---- pass 7: extern __shared__ → appended __local param (§4.1) ----
  Status RewriteDynamicShared() {
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* fn = d->As<FunctionDecl>();
      if (fn->body == nullptr) continue;
      // Find extern __shared__ declarations.
      std::vector<std::pair<std::string, Type::Ptr>> dyn;
      BRIDGECL_RETURN_IF_ERROR(
          VisitVarDecls(fn->body.get(), [&](VarDecl* v) -> Status {
            if (v->quals.is_extern &&
                v->quals.space == AddressSpace::kLocal) {
              Type::Ptr elem =
                  v->type->is_array() ? v->type->element() : v->type;
              dyn.emplace_back(v->name, elem);
            }
            return OkStatus();
          }));
      if (dyn.empty()) continue;
      if (!fn->quals.is_kernel)
        return Untranslatable(fn->loc,
                              "extern __shared__ in a __device__ function");
      if (dyn.size() > 1)
        return Untranslatable(fn->loc,
                              "multiple extern __shared__ declarations");
      // Remove the declarations from the body.
      StmtPtr body(fn->body.release());
      BRIDGECL_RETURN_IF_ERROR(MutateStmts(body, [&](StmtPtr& s) -> Status {
        if (s->kind != StmtKind::kDecl) return OkStatus();
        auto* ds = s->As<DeclStmt>();
        auto& vars = ds->vars;
        vars.erase(std::remove_if(vars.begin(), vars.end(),
                                  [&](const std::unique_ptr<VarDecl>& v) {
                                    return v->quals.is_extern &&
                                           v->quals.space ==
                                               AddressSpace::kLocal;
                                  }),
                   vars.end());
        if (vars.empty()) s = std::make_unique<EmptyStmt>();
        return OkStatus();
      }));
      fn->body.reset(static_cast<CompoundStmt*>(body.release()));
      // Append the __local pointer parameter.
      auto param = std::make_unique<VarDecl>();
      param->name = dyn[0].first;
      param->type = Type::Pointer(dyn[0].second, AddressSpace::kLocal);
      param->is_param = true;
      param->quals.space_explicit = true;
      fn->params.push_back(std::move(param));
      fn->param_is_reference.push_back(false);
      InfoFor(*fn).has_dynamic_shared = true;
    }
    return OkStatus();
  }

  // ---- pass 8: texture references → image + sampler params (§5) ----
  Status RewriteTextures() {
    std::unordered_map<std::string, const TextureRefDecl*> texrefs;
    for (auto& d : tu_.decls)
      if (d->kind == DeclKind::kTextureRef)
        texrefs[d->name] = d->As<TextureRefDecl>();
    if (texrefs.empty()) return OkStatus();

    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* fn = d->As<FunctionDecl>();
      if (fn->body == nullptr) continue;
      std::vector<std::string> used;  // in order of first use
      auto note_use = [&](const std::string& n) {
        for (const auto& u : used)
          if (u == n) return;
        used.push_back(n);
      };
      BRIDGECL_RETURN_IF_ERROR(
          MutateExprs(fn->body.get(), [&](ExprPtr& e) -> Status {
            if (e->kind != ExprKind::kCall) return OkStatus();
            auto* c = e->As<CallExpr>();
            std::string name = c->callee_name();
            if (name != "tex1Dfetch" && name != "tex1D" && name != "tex2D" &&
                name != "tex3D") {
              // A bare texref used any other way is untranslatable.
              for (auto& a : c->args) {
                if (a->kind == ExprKind::kDeclRef &&
                    texrefs.count(a->As<DeclRefExpr>()->name))
                  return Untranslatable(
                      e->loc, "texture reference passed to a function");
              }
              return OkStatus();
            }
            if (c->args.empty() || c->args[0]->kind != ExprKind::kDeclRef)
              return Untranslatable(e->loc,
                                    "texture fetch on a non-reference");
            std::string tex = c->args[0]->As<DeclRefExpr>()->name;
            auto it = texrefs.find(tex);
            if (it == texrefs.end())
              return Untranslatable(e->loc,
                                    "unknown texture reference '" + tex +
                                        "'");
            if (!fn->quals.is_kernel)
              return Untranslatable(
                  e->loc, "texture fetch inside a __device__ function");
            note_use(tex);
            const TextureRefDecl* tr = it->second;
            // read_image{f,i,ui}(img, sampler, coord)
            const char* suffix = IsFloatScalar(tr->elem)            ? "f"
                                 : IsSignedScalar(tr->elem)         ? "i"
                                                                    : "ui";
            auto call = std::make_unique<CallExpr>();
            call->callee = MakeRef(std::string("read_image") + suffix);
            call->loc = e->loc;
            auto img = MakeRef(tex + "__img");
            auto samp = MakeRef(tex + "__sampler");
            call->args.push_back(std::move(img));
            call->args.push_back(std::move(samp));
            if (name == "tex1Dfetch" || name == "tex1D") {
              call->args.push_back(std::move(c->args[1]));
            } else if (name == "tex2D") {
              auto lit = std::make_unique<VectorLitExpr>();
              lit->vec_type = Type::Vector(ScalarKind::kFloat, 2);
              lit->elems.push_back(std::move(c->args[1]));
              lit->elems.push_back(std::move(c->args[2]));
              call->args.push_back(std::move(lit));
            } else {  // tex3D
              auto lit = std::make_unique<VectorLitExpr>();
              lit->vec_type = Type::Vector(ScalarKind::kFloat, 4);
              lit->elems.push_back(std::move(c->args[1]));
              lit->elems.push_back(std::move(c->args[2]));
              lit->elems.push_back(std::move(c->args[3]));
              auto zero = std::make_unique<FloatLitExpr>();
              zero->value = 0;
              zero->is_float = true;
              zero->spelling = "0.0f";
              lit->elems.push_back(std::move(zero));
              call->args.push_back(std::move(lit));
            }
            call->type = Type::Vector(
                IsFloatScalar(tr->elem) ? ScalarKind::kFloat
                : IsSignedScalar(tr->elem) ? ScalarKind::kInt
                                           : ScalarKind::kUInt,
                4);
            // Narrow the 4-component result to the texel width.
            if (tr->elem_width == 1) {
              auto mem = MakeMember(std::move(call), "x");
              mem->is_swizzle = true;
              mem->swizzle = {0};
              mem->type = Type::Scalar(tr->elem);
              e = std::move(mem);
            } else if (tr->elem_width < 4) {
              auto mem = MakeMember(std::move(call),
                                    tr->elem_width == 2 ? "xy" : "xyz");
              mem->is_swizzle = true;
              for (int i = 0; i < tr->elem_width; ++i) mem->swizzle.push_back(i);
              mem->type = Type::Vector(tr->elem, tr->elem_width);
              e = std::move(mem);
            } else {
              e = std::move(call);
            }
            return OkStatus();
          }));
      // Append (image, sampler) parameter pairs.
      for (const std::string& tex : used) {
        const TextureRefDecl* tr = texrefs[tex];
        auto img = std::make_unique<VarDecl>();
        img->name = tex + "__img";
        img->type = Type::Image(tr->dims == 3 ? 3 : tr->dims);
        img->is_param = true;
        img->quals.read_only = true;
        fn->params.push_back(std::move(img));
        fn->param_is_reference.push_back(false);
        auto samp = std::make_unique<VarDecl>();
        samp->name = tex + "__sampler";
        samp->type = Type::Sampler();
        samp->is_param = true;
        fn->params.push_back(std::move(samp));
        fn->param_is_reference.push_back(false);
        InfoFor(*fn).texture_params.push_back(tex);
      }
    }
    // Drop the texture reference declarations.
    tu_.decls.erase(
        std::remove_if(tu_.decls.begin(), tu_.decls.end(),
                       [](const DeclPtr& d) {
                         return d->kind == DeclKind::kTextureRef;
                       }),
        tu_.decls.end());
    return OkStatus();
  }

  // ---- pass 9: __device__ globals & runtime-initialized __constant__
  // globals → appended pointer params (§4.2-§4.3) ----
  Status RewriteStaticSymbols() {
    struct SymbolRec {
      VarDecl* decl;
      bool is_constant;
      bool is_array;
    };
    std::unordered_map<std::string, SymbolRec> symbols;
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kVar) continue;
      auto* v = d->As<VarDecl>();
      if (v->quals.space == AddressSpace::kGlobal) {
        symbols[v->name] = {v, false, v->type->is_array()};
      } else if (v->quals.space == AddressSpace::kConstant &&
                 v->init == nullptr) {
        // §4.2: statically-initialized constants translate directly;
        // runtime-initialized ones (no initializer here, filled by
        // cudaMemcpyToSymbol) become dynamic constant buffers.
        symbols[v->name] = {v, true, v->type->is_array()};
      }
    }
    if (symbols.empty()) return OkStatus();

    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* fn = d->As<FunctionDecl>();
      if (fn->body == nullptr) continue;
      std::vector<std::string> used;
      auto note_use = [&](const std::string& n) {
        for (const auto& u : used)
          if (u == n) return;
        used.push_back(n);
      };
      BRIDGECL_RETURN_IF_ERROR(
          MutateExprs(fn->body.get(), [&](ExprPtr& e) -> Status {
            if (e->kind != ExprKind::kDeclRef) return OkStatus();
            auto* r = e->As<DeclRefExpr>();
            auto it = symbols.find(r->name);
            if (it == symbols.end() || r->var != it->second.decl)
              return OkStatus();
            if (!fn->quals.is_kernel)
              return Untranslatable(
                  e->loc, "static device memory used in a __device__ "
                          "function");
            note_use(r->name);
            r->var = nullptr;  // now refers to the appended parameter
            if (!it->second.is_array) {
              // Scalar symbol: uses become (*name).
              auto deref = std::make_unique<UnaryExpr>();
              deref->op = UnaryOp::kDeref;
              deref->operand = std::move(e);
              auto paren = std::make_unique<ParenExpr>();
              paren->inner = std::move(deref);
              e = std::move(paren);
            }
            return OkStatus();
          }));
      for (const std::string& name : used) {
        const SymbolRec& rec = symbols[name];
        Type::Ptr elem = rec.is_array ? rec.decl->type->element()
                                      : rec.decl->type;
        auto param = std::make_unique<VarDecl>();
        param->name = name;
        param->type = Type::Pointer(
            elem, rec.is_constant ? AddressSpace::kConstant
                                  : AddressSpace::kGlobal);
        param->is_param = true;
        param->quals.space_explicit = true;
        fn->params.push_back(std::move(param));
        fn->param_is_reference.push_back(false);
        KernelTranslationInfo::SymbolParam sp;
        sp.name = name;
        sp.byte_size = rec.decl->type->ByteSize();
        sp.is_constant = rec.is_constant;
        InfoFor(*fn).symbol_params.push_back(std::move(sp));
      }
    }
    // Remove the converted declarations.
    tu_.decls.erase(
        std::remove_if(tu_.decls.begin(), tu_.decls.end(),
                       [&](const DeclPtr& d) {
                         if (d->kind != DeclKind::kVar) return false;
                         return symbols.count(d->name) > 0;
                       }),
        tu_.decls.end());
    return OkStatus();
  }

  // ---- pass 10: per-address-space specialization of device functions ----
  // OpenCL pointer parameters carry the pointee's address space; a CUDA
  // helper called with both __global and __local pointers needs one clone
  // per space (the paper's "new pointer variable for each address space").
  Status SpecializeFunctionSpaces() {
    // Gather call-site spaces for each non-kernel function.
    struct FnUse {
      std::map<std::vector<int>, std::string> variants;  // spaces -> name
    };
    std::unordered_map<std::string, FunctionDecl*> helpers;
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      if (!f->quals.is_kernel && f->body) helpers[f->name] = f;
    }
    if (helpers.empty()) return OkStatus();

    std::unordered_map<std::string, FnUse> uses;
    std::vector<DeclPtr> clones;
    auto suffix_for = [](const std::vector<int>& spaces) {
      std::string s;
      for (int sp : spaces) {
        switch (static_cast<AddressSpace>(sp)) {
          case AddressSpace::kGlobal: s += "g"; break;
          case AddressSpace::kLocal: s += "l"; break;
          case AddressSpace::kConstant: s += "c"; break;
          default: s += "p"; break;
        }
      }
      return s;
    };

    auto fix_calls = [&](FunctionDecl& caller) -> Status {
      return MutateExprs(caller.body.get(), [&](ExprPtr& e) -> Status {
        if (e->kind != ExprKind::kCall) return OkStatus();
        auto* c = e->As<CallExpr>();
        auto it = helpers.find(c->callee_name());
        if (it == helpers.end()) return OkStatus();
        FunctionDecl* helper = it->second;
        // Space signature from pointer arguments.
        std::vector<int> spaces;
        bool any_nonprivate = false;
        for (size_t i = 0;
             i < c->args.size() && i < helper->params.size(); ++i) {
          int sp = 0;
          if (helper->params[i]->type &&
              helper->params[i]->type->is_pointer() && c->args[i]->type &&
              c->args[i]->type->is_pointer()) {
            sp = static_cast<int>(c->args[i]->type->pointee_space());
            if (sp != 0) any_nonprivate = true;
          }
          spaces.push_back(sp);
        }
        if (!any_nonprivate) return OkStatus();
        FnUse& use = uses[helper->name];
        auto found = use.variants.find(spaces);
        std::string vname;
        if (found != use.variants.end()) {
          vname = found->second;
        } else {
          vname = helper->name + "__" + suffix_for(spaces);
          use.variants[spaces] = vname;
          auto clone = std::make_unique<FunctionDecl>();
          clone->name = vname;
          clone->quals = helper->quals;
          clone->return_type = helper->return_type;
          for (auto& p : helper->params)
            clone->params.push_back(CloneVarDecl(*p));
          clone->param_is_reference = helper->param_is_reference;
          clone->body.reset(static_cast<CompoundStmt*>(
              CloneStmt(*helper->body).release()));
          for (size_t i = 0; i < spaces.size(); ++i) {
            if (spaces[i] == 0 || !clone->params[i]->type->is_pointer())
              continue;
            clone->params[i]->type =
                Type::Pointer(clone->params[i]->type->pointee(),
                              static_cast<AddressSpace>(spaces[i]));
            clone->params[i]->quals.space_explicit = true;
          }
          clones.push_back(std::move(clone));
        }
        c->callee = MakeRef(vname);
        return OkStatus();
      });
    };
    // Kernels first (helpers may call helpers; one level is supported).
    BRIDGECL_RETURN_IF_ERROR(ForEachBody(fix_calls));
    if (clones.empty()) return OkStatus();
    // Insert clones before the first kernel; drop now-unused originals
    // only when every call was specialized (conservatively keep them).
    std::vector<DeclPtr> rebuilt;
    bool inserted = false;
    for (auto& d : tu_.decls) {
      if (!inserted && d->kind == DeclKind::kFunction &&
          d->As<FunctionDecl>()->quals.is_kernel) {
        for (auto& cl : clones) rebuilt.push_back(std::move(cl));
        inserted = true;
      }
      rebuilt.push_back(std::move(d));
    }
    if (!inserted)
      for (auto& cl : clones) rebuilt.push_back(std::move(cl));
    tu_.decls = std::move(rebuilt);
    return OkStatus();
  }

  // ---- pass 11: multi-space pointers (§3.6). A pointer variable that
  // takes addresses from two or more address spaces cannot be typed in
  // OpenCL 1.2. Following the paper ("our translator generates a new
  // pointer variable for each address space"), the common straight-line
  // reuse pattern
  //     float* p = gptr;  ... p[i] ...  p = tile;  ... p[i] ...
  // is split into one variable per segment, where every assignment to the
  // pointer is a direct statement of the block that declares it (each use
  // then has a unique reaching definition). Reassignments inside nested
  // control flow are rejected.
  Status SplitMultiSpacePointers() {
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* fn = d->As<FunctionDecl>();
      if (fn->body == nullptr) continue;
      // Pointer locals assigned in >= 2 distinct non-private spaces.
      std::unordered_map<std::string, std::set<int>> spaces;
      auto note = [&](const Expr* lhs, const Expr* rhs) {
        if (lhs->kind != ExprKind::kDeclRef) return;
        if (!lhs->type || !lhs->type->is_pointer()) return;
        if (!rhs->type || !rhs->type->is_pointer()) return;
        int sp = static_cast<int>(rhs->type->pointee_space());
        if (sp != 0) spaces[lhs->As<DeclRefExpr>()->name].insert(sp);
      };
      BRIDGECL_RETURN_IF_ERROR(
          MutateExprs(fn->body.get(), [&](ExprPtr& e) -> Status {
            if (e->kind == ExprKind::kAssign) {
              auto* a = e->As<AssignExpr>();
              note(a->lhs.get(), a->rhs.get());
            }
            return OkStatus();
          }));
      BRIDGECL_RETURN_IF_ERROR(
          VisitVarDecls(fn->body.get(), [&](VarDecl* v) -> Status {
            if (v->init && v->type && v->type->is_pointer() &&
                v->init->type && v->init->type->is_pointer()) {
              int sp = static_cast<int>(v->init->type->pointee_space());
              if (sp != 0) spaces[v->name].insert(sp);
            }
            return OkStatus();
          }));
      for (const auto& [name, sps] : spaces) {
        if (sps.size() < 2) continue;
        BRIDGECL_RETURN_IF_ERROR(SplitOnePointer(*fn, name));
      }
    }
    return OkStatus();
  }

  static const char* SpaceSuffix(AddressSpace sp) {
    switch (sp) {
      case AddressSpace::kGlobal: return "__g";
      case AddressSpace::kLocal: return "__l";
      case AddressSpace::kConstant: return "__c";
      default: return "__p";
    }
  }

  /// Split pointer `name` in `fn` into one clone per straight-line
  /// segment. Requires the declaration and every plain assignment to be
  /// direct statements of the same compound block.
  Status SplitOnePointer(FunctionDecl& fn, const std::string& name) {
    // Locate the compound block whose statement list declares `name`.
    std::function<CompoundStmt*(Stmt*)> find_home =
        [&](Stmt* s) -> CompoundStmt* {
      if (s == nullptr) return nullptr;
      switch (s->kind) {
        case StmtKind::kCompound: {
          auto* c = s->As<CompoundStmt>();
          for (auto& st : c->body) {
            if (st->kind == StmtKind::kDecl) {
              for (auto& v : st->As<DeclStmt>()->vars)
                if (v->name == name) return c;
            }
            if (CompoundStmt* inner = find_home(st.get())) return inner;
          }
          return nullptr;
        }
        case StmtKind::kIf: {
          auto* i = s->As<IfStmt>();
          if (auto* c = find_home(i->then_stmt.get())) return c;
          return find_home(i->else_stmt.get());
        }
        case StmtKind::kFor:
          return find_home(s->As<ForStmt>()->body.get());
        case StmtKind::kWhile:
          return find_home(s->As<WhileStmt>()->body.get());
        case StmtKind::kDo:
          return find_home(s->As<DoStmt>()->body.get());
        default:
          return nullptr;
      }
    };
    CompoundStmt* home = find_home(fn.body.get());
    if (home == nullptr)
      return Untranslatable(fn.loc, "multi-space pointer '" + name +
                                        "' with no local declaration");

    auto assign_to_name = [&](const Stmt& s) -> AssignExpr* {
      if (s.kind != StmtKind::kExpr) return nullptr;
      Expr* e = s.As<ExprStmt>()->expr.get();
      if (e->kind != ExprKind::kAssign) return nullptr;
      auto* a = e->As<AssignExpr>();
      if (a->compound) return nullptr;
      if (a->lhs->kind != ExprKind::kDeclRef) return nullptr;
      return a->lhs->As<DeclRefExpr>()->name == name ? a : nullptr;
    };
    // Every assignment must be a direct statement of the home block;
    // otherwise the reaching definition at a use is ambiguous.
    int top_level_assigns = 0;
    for (auto& st : home->body)
      if (assign_to_name(*st) != nullptr) ++top_level_assigns;
    int total_assigns = 0;
    BRIDGECL_RETURN_IF_ERROR(
        MutateExprs(fn.body.get(), [&](ExprPtr& e) -> Status {
          if (e->kind == ExprKind::kAssign && !e->As<AssignExpr>()->compound &&
              e->As<AssignExpr>()->lhs->kind == ExprKind::kDeclRef &&
              e->As<AssignExpr>()->lhs->As<DeclRefExpr>()->name == name)
            ++total_assigns;
          return OkStatus();
        }));
    if (total_assigns != top_level_assigns)
      return Untranslatable(
          fn.loc, "pointer '" + name + "' in '" + fn.name +
                      "' is reassigned across address spaces inside "
                      "control flow; OpenCL 1.2 cannot type it and no "
                      "unique reaching definition exists to split it");

    // Walk the home block: a new clone starts at the declaration and at
    // every reassignment; uses in between (including inside nested
    // statements) rename to the current clone.
    int clone_id = 0;
    std::string current;
    auto rename_uses_in = [&](Stmt* s) {
      if (current.empty() || s == nullptr) return;
      (void)MutateExprs(s, [&](ExprPtr& e) -> Status {
        if (e->kind == ExprKind::kDeclRef &&
            e->As<DeclRefExpr>()->name == name) {
          e->As<DeclRefExpr>()->name = current;
          e->As<DeclRefExpr>()->var = nullptr;
        }
        return OkStatus();
      });
    };
    for (auto& st : home->body) {
      if (st->kind == StmtKind::kDecl) {
        bool renamed = false;
        for (auto& v : st->As<DeclStmt>()->vars) {
          if (v->name != name) continue;
          AddressSpace sp =
              v->init && v->init->type && v->init->type->is_pointer()
                  ? v->init->type->pointee_space()
                  : AddressSpace::kPrivate;
          current = name + SpaceSuffix(sp) + std::to_string(clone_id++);
          v->name = current;
          if (v->type && v->type->is_pointer())
            v->type = Type::Pointer(v->type->pointee(), sp);
          renamed = true;
        }
        if (!renamed) rename_uses_in(st.get());
        continue;
      }
      if (AssignExpr* a = assign_to_name(*st)) {
        // Uses inside the RHS still refer to the previous clone.
        rename_uses_in(st.get());  // renames lhs too; we rebuild it anyway
        AddressSpace sp = a->rhs->type && a->rhs->type->is_pointer()
                              ? a->rhs->type->pointee_space()
                              : AddressSpace::kPrivate;
        current = name + SpaceSuffix(sp) + std::to_string(clone_id++);
        auto var = std::make_unique<VarDecl>();
        var->name = current;
        var->type = a->rhs->type && a->rhs->type->is_pointer()
                        ? a->rhs->type
                        : Type::Pointer(Type::FloatTy(), sp);
        var->init = std::move(a->rhs);
        auto ds = std::make_unique<DeclStmt>();
        ds->vars.push_back(std::move(var));
        st = std::move(ds);
        continue;
      }
      rename_uses_in(st.get());
    }
    return OkStatus();
  }

  void FinalizeKernelInfos() {
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      if (f->quals.is_kernel && f->body) InfoFor(*f);
    }
  }

  TranslationUnit& tu_;
  DiagnosticEngine& diags_;
  TranslateOptions opts_;
  std::vector<KernelTranslationInfo> kernels_;
  bool used_atomic_emulation_ = false;
};

}  // namespace

StatusOr<TranslationResult> TranslateCudaToOpenCl(
    const std::string& source, DiagnosticEngine& diags,
    const TranslateOptions& opts) {
  ParseOptions popts;
  popts.dialect = Dialect::kCUDA;
  BRIDGECL_ASSIGN_OR_RETURN(auto tu,
                            ParseTranslationUnit(source, popts, diags));
  SemaOptions sopts;
  sopts.dialect = Dialect::kCUDA;
  BRIDGECL_RETURN_IF_ERROR(Analyze(*tu, sopts, diags));
  CuToCl pass(*tu, diags, opts);
  return pass.Run();
}

}  // namespace bridgecl::translator
