#include "translator/host_rewriter.h"

#include <cctype>
#include <vector>

#include "support/strings.h"

namespace bridgecl::translator {
namespace {

/// Byte-level scanner that understands comments and string/char literals,
/// so rewrites never fire inside them.
class Scan {
 public:
  explicit Scan(const std::string& s) : s_(s) {}

  size_t size() const { return s_.size(); }
  char at(size_t i) const { return i < s_.size() ? s_[i] : '\0'; }

  /// Advance `i` past any comment or literal starting there. Returns true
  /// if something was skipped.
  bool SkipNonCode(size_t& i) const {
    if (at(i) == '/' && at(i + 1) == '/') {
      while (i < s_.size() && s_[i] != '\n') ++i;
      return true;
    }
    if (at(i) == '/' && at(i + 1) == '*') {
      i += 2;
      while (i + 1 < s_.size() && !(s_[i] == '*' && s_[i + 1] == '/')) ++i;
      i += 2;
      return true;
    }
    if (at(i) == '"' || at(i) == '\'') {
      char q = s_[i++];
      while (i < s_.size() && s_[i] != q) {
        if (s_[i] == '\\') ++i;
        ++i;
      }
      ++i;
      return true;
    }
    return false;
  }

  /// Position just past the matching closer for the opener at `i`.
  size_t MatchBalanced(size_t i, char open, char close) const {
    int depth = 0;
    while (i < s_.size()) {
      if (SkipNonCode(i)) continue;
      if (s_[i] == open) ++depth;
      if (s_[i] == close) {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return std::string::npos;
  }

  /// Split `s_[begin, end)` on top-level commas.
  std::vector<std::string> SplitArgs(size_t begin, size_t end) const {
    std::vector<std::string> out;
    int depth = 0;
    size_t start = begin;
    for (size_t i = begin; i < end;) {
      if (SkipNonCode(i)) continue;
      char c = s_[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        out.emplace_back(StripAsciiWhitespace(
            std::string_view(s_).substr(start, i - start)));
        start = i + 1;
      }
      ++i;
    }
    if (end > start)
      out.emplace_back(StripAsciiWhitespace(
          std::string_view(s_).substr(start, end - start)));
    return out;
  }

  const std::string& str() const { return s_; }

 private:
  const std::string& s_;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Whether the identifier `word` appears at position `i` (word-aligned).
bool WordAt(const std::string& s, size_t i, const std::string& word) {
  if (s.compare(i, word.size(), word) != 0) return false;
  if (i > 0 && IsIdentChar(s[i - 1])) return false;
  size_t after = i + word.size();
  return after >= s.size() || !IsIdentChar(s[after]);
}

/// Extent of the top-level declaration starting at `begin` (ends after the
/// matching `};` / `}` / `;`).
size_t DeclEnd(const Scan& scan, size_t begin) {
  size_t i = begin;
  const std::string& s = scan.str();
  while (i < s.size()) {
    if (scan.SkipNonCode(i)) continue;
    char c = s[i];
    if (c == ';') return i + 1;
    if (c == '=') {
      // Initializer: run to the terminating ';' (skipping braces).
      while (i < s.size()) {
        if (scan.SkipNonCode(i)) continue;
        if (s[i] == '{') {
          i = scan.MatchBalanced(i, '{', '}');
          continue;
        }
        if (s[i] == ';') return i + 1;
        ++i;
      }
      return s.size();
    }
    if (c == '{') {
      size_t close = scan.MatchBalanced(i, '{', '}');
      if (close == std::string::npos) return s.size();
      // Optional trailing ';' (struct definitions).
      size_t j = close;
      while (j < s.size() &&
             std::isspace(static_cast<unsigned char>(s[j])))
        ++j;
      return (j < s.size() && s[j] == ';') ? j + 1 : close;
    }
    ++i;
  }
  return s.size();
}

}  // namespace

std::pair<std::string, std::string> SplitCudaSource(
    const std::string& cuda_source) {
  Scan scan(cuda_source);
  const std::string& s = cuda_source;
  std::string device, host;
  size_t i = 0;
  size_t decl_start = 0;
  int depth = 0;
  auto flush = [&](size_t end, bool to_device) {
    std::string piece = s.substr(decl_start, end - decl_start);
    (to_device ? device : host) += piece;
    decl_start = end;
  };
  while (i < s.size()) {
    if (scan.SkipNonCode(i)) continue;
    char c = s[i];
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (depth == 0 &&
        (WordAt(s, i, "__global__") || WordAt(s, i, "__device__") ||
         WordAt(s, i, "__constant__") ||
         (WordAt(s, i, "texture") && scan.at(i + 7) == '<'))) {
      // Rewind to the start of this declaration (just after the previous
      // one): everything between decl_start and the first
      // non-whitespace belongs to the preceding host region.
      size_t decl_begin = i;
      while (decl_begin > decl_start &&
             (std::isspace(static_cast<unsigned char>(s[decl_begin - 1])) ||
              IsIdentChar(s[decl_begin - 1]) || s[decl_begin - 1] == '*'))
        --decl_begin;  // pull in leading qualifiers like `static`/`extern`
      // A preceding `template <...>` header belongs to the device decl.
      {
        size_t j = decl_begin;
        while (j > decl_start &&
               std::isspace(static_cast<unsigned char>(s[j - 1])))
          --j;
        if (j > decl_start && s[j - 1] == '>') {
          size_t lt = s.rfind('<', j - 1);
          if (lt != std::string::npos && lt >= decl_start) {
            size_t k = lt;
            while (k > decl_start &&
                   std::isspace(static_cast<unsigned char>(s[k - 1])))
              --k;
            if (k >= 8 && s.compare(k - 8, 8, "template") == 0)
              decl_begin = k - 8;
          }
        }
      }
      flush(decl_begin, /*to_device=*/false);
      size_t end = DeclEnd(scan, i);
      flush(end, /*to_device=*/true);
      device += "\n";
      i = end;
      continue;
    }
    ++i;
  }
  flush(s.size(), /*to_device=*/false);
  return {device, host};
}

StatusOr<HostRewriteResult> RewriteCudaHostCode(
    const std::string& cuda_source, DiagnosticEngine& diags,
    const TranslateOptions& opts) {
  HostRewriteResult result;
  auto [device, host] = SplitCudaSource(cuda_source);

  // Translate the device side (Figure 3's .cu.cl file).
  BRIDGECL_ASSIGN_OR_RETURN(result.translation,
                            TranslateCudaToOpenCl(device, diags, opts));
  result.device_source = result.translation.source;

  // ---- rewrite the host side ----
  Scan scan(host);
  std::string out;
  out +=
      "/* Generated by the BridgeCL CUDA->OpenCL host rewriter (see paper "
      "S3.2):\n"
      " * kernel launches and cudaMemcpyTo/FromSymbol are statically\n"
      " * rewritten; every other CUDA call resolves to the wrapper\n"
      " * library at link time. */\n"
      "extern cl_command_queue __bridgecl_queue;\n"
      "extern cl_kernel __bridgecl_kernel(const char* name);\n"
      "extern cl_mem __bridgecl_symbol(const char* name);\n"
      "extern cl_mem __bridgecl_texture_image(const char* name);\n"
      "extern cl_sampler __bridgecl_texture_sampler(const char* name);\n"
      "extern void __bridgecl_ndrange(dim3 grid, dim3 block, size_t* gws,"
      " size_t* lws);\n\n";

  size_t i = 0;
  size_t copied = 0;
  auto copy_to = [&](size_t end) {
    out += host.substr(copied, end - copied);
    copied = end;
  };

  while (i < host.size()) {
    if (scan.SkipNonCode(i)) continue;
    // ---- cudaMemcpyToSymbol / cudaMemcpyFromSymbol ----
    if (WordAt(host, i, "cudaMemcpyToSymbol") ||
        WordAt(host, i, "cudaMemcpyFromSymbol")) {
      bool to = WordAt(host, i, "cudaMemcpyToSymbol");
      size_t open = host.find('(', i);
      if (open == std::string::npos) break;
      size_t close = scan.MatchBalanced(open, '(', ')');
      if (close == std::string::npos)
        return InvalidArgumentError("unbalanced cudaMemcpy*Symbol call");
      std::vector<std::string> args = scan.SplitArgs(open + 1, close - 1);
      if (args.size() < 3)
        return InvalidArgumentError("cudaMemcpy*Symbol needs 3+ arguments");
      std::string symbol = args[to ? 0 : 1];
      std::string hostptr = args[to ? 1 : 0];
      std::string count = args[2];
      std::string offset = args.size() > 3 ? args[3] : "0";
      // Accept both quoted ("sym") and unquoted (sym) spellings.
      if (symbol.size() >= 2 && symbol.front() == '"')
        symbol = symbol.substr(1, symbol.size() - 2);
      copy_to(i);
      out += StrFormat(
          "%s(__bridgecl_queue, __bridgecl_symbol(\"%s\"), CL_TRUE, "
          "%s, %s, %s, 0, NULL, NULL)",
          to ? "clEnqueueWriteBuffer" : "clEnqueueReadBuffer",
          symbol.c_str(), offset.c_str(), count.c_str(), hostptr.c_str());
      copied = close;
      i = close;
      continue;
    }
    // ---- kernel launch: name<<<grid, block[, shmem]>>>(args) ----
    if (host.compare(i, 3, "<<<") == 0) {
      // Back up over the kernel name.
      size_t name_end = i;
      size_t name_begin = name_end;
      while (name_begin > 0 && IsIdentChar(host[name_begin - 1]))
        --name_begin;
      std::string kernel = host.substr(name_begin, name_end - name_begin);
      if (kernel.empty())
        return InvalidArgumentError("malformed kernel launch");
      size_t cfg_close = host.find(">>>", i + 3);
      if (cfg_close == std::string::npos)
        return InvalidArgumentError("unterminated <<<...>>>");
      std::vector<std::string> cfg = scan.SplitArgs(i + 3, cfg_close);
      if (cfg.empty() || cfg.size() > 4)
        return InvalidArgumentError("launch configuration arity");
      size_t args_open = host.find('(', cfg_close + 3);
      if (args_open == std::string::npos)
        return InvalidArgumentError("kernel launch without arguments");
      size_t args_close = scan.MatchBalanced(args_open, '(', ')');
      std::vector<std::string> args =
          scan.SplitArgs(args_open + 1, args_close - 1);
      if (args.size() == 1 && args[0].empty()) args.clear();
      // Statement should end with ';'.
      size_t stmt_end = args_close;
      while (stmt_end < host.size() &&
             std::isspace(static_cast<unsigned char>(host[stmt_end])))
        ++stmt_end;
      if (stmt_end < host.size() && host[stmt_end] == ';') ++stmt_end;

      const KernelTranslationInfo* info = result.translation.Find(kernel);
      copy_to(name_begin);
      std::string rep = "{\n";
      rep += StrFormat("  cl_kernel __bridgecl_k = __bridgecl_kernel(\"%s\");\n",
                       kernel.c_str());
      int index = 0;
      for (const std::string& a : args) {
        rep += StrFormat(
            "  clSetKernelArg(__bridgecl_k, %d, sizeof(%s), &(%s));\n",
            index++, a.c_str(), a.c_str());
      }
      if (info != nullptr && info->has_dynamic_shared) {
        std::string shmem = cfg.size() > 2 ? cfg[2] : "0";
        rep += StrFormat("  clSetKernelArg(__bridgecl_k, %d, %s, NULL);\n",
                         index++, shmem.c_str());
      }
      if (info != nullptr) {
        for (const std::string& tex : info->texture_params) {
          rep += StrFormat(
              "  clSetKernelArg(__bridgecl_k, %d, sizeof(cl_mem), "
              "&__bridgecl_texture_image(\"%s\"));\n",
              index++, tex.c_str());
          rep += StrFormat(
              "  clSetKernelArg(__bridgecl_k, %d, sizeof(cl_sampler), "
              "&__bridgecl_texture_sampler(\"%s\"));\n",
              index++, tex.c_str());
        }
        for (const auto& sym : info->symbol_params) {
          rep += StrFormat(
              "  clSetKernelArg(__bridgecl_k, %d, sizeof(cl_mem), "
              "&__bridgecl_symbol(\"%s\"));\n",
              index++, sym.name.c_str());
        }
      }
      rep += "  size_t __bridgecl_gws[3];\n  size_t __bridgecl_lws[3];\n";
      rep += StrFormat(
          "  __bridgecl_ndrange(%s, %s, __bridgecl_gws, __bridgecl_lws);\n",
          cfg[0].c_str(), cfg.size() > 1 ? cfg[1].c_str() : "1");
      rep +=
          "  clEnqueueNDRangeKernel(__bridgecl_queue, __bridgecl_k, 3, "
          "NULL, __bridgecl_gws, __bridgecl_lws, 0, NULL, NULL);\n";
      rep += "}";
      out += rep;
      copied = stmt_end;
      i = stmt_end;
      continue;
    }
    ++i;
  }
  copy_to(host.size());
  result.host_source = std::move(out);
  return result;
}

}  // namespace bridgecl::translator
