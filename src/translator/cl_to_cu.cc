// OpenCL → CUDA device-code translation (§3.4 Figure 2, §3.6, §4, §5).
#include <optional>
#include <set>
#include <unordered_map>

#include "lang/builtins.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/sema.h"
#include "support/strings.h"
#include "translator/rewrite_util.h"
#include "translator/translate.h"

namespace bridgecl::translator {

using namespace bridgecl::lang;  // NOLINT: rewriters are lang-dense

namespace {

constexpr char kSharedArena[] = "__OC2CU_shared_mem";
constexpr char kConstArena[] = "__OC2CU_const_mem";
/// Size of the dynamic constant arena (Fig 5's MAX_CONST_SIZE). Kept well
/// under the device's 64KB so statically allocated __constant__ variables
/// still fit beside it.
constexpr size_t kConstArenaBytes = 16 * 1024;

Status Untranslatable(DiagnosticEngine& diags, SourceLoc loc,
                      const std::string& what) {
  diags.Error(loc, "untranslatable to CUDA: " + what);
  return UntranslatableError(what);
}

bool IsWideVector(const Type::Ptr& t) {
  return t && t->is_vector() &&
         (t->vector_width() == 8 || t->vector_width() == 16);
}

/// Splice-capable statement rewriting: `fn` may replace one statement with
/// several. Recurses through all statement containers.
using StmtExpander =
    std::function<StatusOr<std::optional<std::vector<StmtPtr>>>(Stmt&)>;

Status ExpandStmts(StmtPtr& slot, const StmtExpander& fn);

Status ExpandInCompound(CompoundStmt& c, const StmtExpander& fn) {
  std::vector<StmtPtr> out;
  out.reserve(c.body.size());
  for (auto& s : c.body) {
    BRIDGECL_RETURN_IF_ERROR(ExpandStmts(s, fn));
    BRIDGECL_ASSIGN_OR_RETURN(auto repl, fn(*s));
    if (repl.has_value()) {
      for (auto& r : *repl) out.push_back(std::move(r));
    } else {
      out.push_back(std::move(s));
    }
  }
  c.body = std::move(out);
  return OkStatus();
}

Status ExpandStmts(StmtPtr& slot, const StmtExpander& fn) {
  if (!slot) return OkStatus();
  switch (slot->kind) {
    case StmtKind::kCompound:
      return ExpandInCompound(*slot->As<CompoundStmt>(), fn);
    case StmtKind::kIf: {
      auto* i = slot->As<IfStmt>();
      BRIDGECL_RETURN_IF_ERROR(ExpandStmts(i->then_stmt, fn));
      BRIDGECL_RETURN_IF_ERROR(ExpandStmts(i->else_stmt, fn));
      return OkStatus();
    }
    case StmtKind::kFor:
      return ExpandStmts(slot->As<ForStmt>()->body, fn);
    case StmtKind::kWhile:
      return ExpandStmts(slot->As<WhileStmt>()->body, fn);
    case StmtKind::kDo:
      return ExpandStmts(slot->As<DoStmt>()->body, fn);
    default:
      return OkStatus();
  }
}

class ClToCu {
 public:
  ClToCu(TranslationUnit& tu, DiagnosticEngine& diags,
         const TranslateOptions& opts)
      : tu_(tu), diags_(diags), opts_(opts) {}

  StatusOr<TranslationResult> Run() {
    BRIDGECL_RETURN_IF_ERROR(ComposeNestedSwizzles());
    BRIDGECL_RETURN_IF_ERROR(CanonicalizeWideSwizzles());
    BRIDGECL_RETURN_IF_ERROR(ExpandVectorStatements());
    BRIDGECL_RETURN_IF_ERROR(RewriteNarrowSwizzles());
    BRIDGECL_RETURN_IF_ERROR(LowerWideVectors());
    BRIDGECL_RETURN_IF_ERROR(RewriteBuiltins());
    BRIDGECL_RETURN_IF_ERROR(RewriteDynamicParams());
    TranslationResult result;
    PrintOptions popts;
    popts.dialect = Dialect::kCUDA;
    result.source = PrintTranslationUnit(tu_, popts);
    result.kernels = std::move(kernels_);
    return result;
  }

 private:
  // ---- pass 0: compose nested swizzles (v.lo.x == v.x) ----
  // The paper's \u00a73.6 example: `v.lo.x` is legal OpenCL but never legal
  // CUDA; composing the component maps first lets the later passes treat
  // every swizzle as a single-level selection.
  Status ComposeNestedSwizzles() {
    auto fix = [&](ExprPtr& e) -> Status {
      if (e->kind != ExprKind::kMember) return OkStatus();
      auto* outer = e->As<MemberExpr>();
      if (!outer->is_swizzle) return OkStatus();
      while (outer->base->kind == ExprKind::kMember &&
             outer->base->As<MemberExpr>()->is_swizzle) {
        auto* inner = outer->base->As<MemberExpr>();
        std::vector<int> composed;
        composed.reserve(outer->swizzle.size());
        for (int i : outer->swizzle) {
          if (i >= static_cast<int>(inner->swizzle.size()))
            return Untranslatable(diags_, e->loc,
                                  "swizzle component out of range");
          composed.push_back(inner->swizzle[i]);
        }
        outer->swizzle = std::move(composed);
        outer->base = std::move(inner->base);
        // Refresh the spelling from the composed indices.
        static const char* kXyzw[] = {"x", "y", "z", "w"};
        std::string spelling;
        bool all_small = true;
        for (int i : outer->swizzle) all_small &= i < 4;
        if (all_small && outer->swizzle.size() <= 4) {
          for (int i : outer->swizzle) spelling += kXyzw[i];
        } else {
          spelling = "s";
          for (int i : outer->swizzle)
            spelling += "0123456789abcdef"[i];
        }
        outer->member = spelling;
        if (outer->base->type && outer->base->type->is_vector()) {
          int n = static_cast<int>(outer->swizzle.size());
          ScalarKind ek = outer->base->type->scalar_kind();
          e->type = n == 1 ? Type::Scalar(ek) : Type::Vector(ek, n);
        }
      }
      return OkStatus();
    };
    return ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), fix);
    });
  }

  // ---- pass 1: canonicalize sN spellings on wide vectors to decimal ----
  Status CanonicalizeWideSwizzles() {
    auto fix = [&](ExprPtr& e) -> Status {
      if (e->kind != ExprKind::kMember) return OkStatus();
      auto* m = e->As<MemberExpr>();
      if (!m->is_swizzle || !IsWideVector(m->base->type)) return OkStatus();
      if (m->swizzle.size() == 1) {
        m->member = "s" + std::to_string(m->swizzle[0]);
      }
      return OkStatus();
    };
    return ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), fix);
    });
  }

  // ---- pass 2: statement-level vector expansion ----
  // Expands (a) multi-component swizzle assignments (v1.lo = v2.lo;) into
  // per-component assignments (§3.6) and (b) arithmetic on 8/16-component
  // vectors, which CUDA cannot express natively.
  Status ExpandVectorStatements() {
    return ForEachBody([&](FunctionDecl& fn) -> Status {
      StmtPtr body(fn.body.release());
      auto st = ExpandStmts(body, [&](Stmt& s) {
        return ExpandOneStmt(s);
      });
      fn.body.reset(static_cast<CompoundStmt*>(body.release()));
      return st;
    });
  }

  StatusOr<std::optional<std::vector<StmtPtr>>> ExpandOneStmt(Stmt& s) {
    // (a) assignment statements.
    if (s.kind == StmtKind::kExpr) {
      Expr* e = s.As<ExprStmt>()->expr.get();
      if (e->kind != ExprKind::kAssign) return std::optional<std::vector<StmtPtr>>();
      auto* a = e->As<AssignExpr>();
      Expr* lhs = a->lhs.get();
      bool lhs_multi_swizzle =
          lhs->kind == ExprKind::kMember &&
          lhs->As<MemberExpr>()->is_swizzle &&
          lhs->As<MemberExpr>()->swizzle.size() > 1;
      bool wide = IsWideVector(lhs->type);
      if (!lhs_multi_swizzle && !wide)
        return std::optional<std::vector<StmtPtr>>();
      if (a->compound)
        return Untranslatable(diags_, e->loc,
                              "compound assignment to a vector swizzle");
      int n = lhs_multi_swizzle
                  ? static_cast<int>(lhs->As<MemberExpr>()->swizzle.size())
                  : lhs->type->vector_width();
      std::vector<StmtPtr> out;
      // Try direct component extraction of the RHS; fall back to a
      // temporary when the RHS is too complex (e.g. contains calls).
      bool direct = !ContainsCall(*a->rhs);
      if (direct) {
        // probe component 0
        ExprPtr probe = ExtractComponent(*a->rhs, 0);
        direct = probe != nullptr;
      }
      std::string tmp_name;
      if (!direct) {
        if (wide)
          return Untranslatable(
              diags_, e->loc,
              "complex expression of 8/16-component vector type");
        tmp_name = "__oc2cu_tmp" + std::to_string(tmp_counter_++);
        auto ds = std::make_unique<DeclStmt>();
        auto var = std::make_unique<VarDecl>();
        var->name = tmp_name;
        var->type = a->rhs->type
                        ? a->rhs->type
                        : Type::Vector(lhs->type->scalar_kind(), n);
        var->init = std::move(a->rhs);
        ds->vars.push_back(std::move(var));
        out.push_back(std::move(ds));
      }
      for (int i = 0; i < n; ++i) {
        ExprPtr lhs_i;
        if (lhs_multi_swizzle) {
          auto* m = lhs->As<MemberExpr>();
          int dst = m->swizzle[i];
          static const char* kXyzw[] = {"x", "y", "z", "w"};
          auto mem = MakeMember(CloneExpr(*m->base),
                                dst < 4 ? kXyzw[dst]
                                        : "s" + std::to_string(dst));
          mem->is_swizzle = true;
          mem->swizzle = {dst};
          lhs_i = std::move(mem);
        } else {
          lhs_i = ExtractComponent(*lhs, i);
          if (!lhs_i)
            return Untranslatable(diags_, e->loc,
                                  "unsupported wide-vector store target");
        }
        ExprPtr rhs_i;
        if (direct) {
          rhs_i = ExtractComponent(*a->rhs, i);
          if (!rhs_i)
            return Untranslatable(diags_, e->loc,
                                  "unsupported vector expression in "
                                  "swizzle assignment");
        } else {
          static const char* kXyzw[] = {"x", "y", "z", "w"};
          auto base_ref = MakeRef(tmp_name);
          base_ref->type = a->rhs ? nullptr : nullptr;  // narrow temp
          auto mem = MakeMember(std::move(base_ref),
                                i < 4 ? kXyzw[i] : "s" + std::to_string(i));
          mem->is_swizzle = true;
          mem->swizzle = {i};
          rhs_i = std::move(mem);
        }
        auto es = std::make_unique<ExprStmt>();
        es->expr = MakeAssign(std::move(lhs_i), std::move(rhs_i));
        out.push_back(std::move(es));
      }
      return std::optional<std::vector<StmtPtr>>(std::move(out));
    }
    // (b) wide-vector declarations with computed initializers.
    if (s.kind == StmtKind::kDecl) {
      auto* d = s.As<DeclStmt>();
      bool needs = false;
      for (auto& v : d->vars) {
        if (!IsWideVector(v->type) || !v->init) continue;
        ExprKind k = v->init->kind;
        // Plain loads/copies survive as struct copies after lowering.
        if (k == ExprKind::kIndex || k == ExprKind::kDeclRef ||
            k == ExprKind::kCall)
          continue;
        needs = true;
      }
      if (!needs) return std::optional<std::vector<StmtPtr>>();
      std::vector<StmtPtr> out;
      for (auto& v : d->vars) {
        ExprPtr init;
        bool expand = IsWideVector(v->type) && v->init &&
                      v->init->kind != ExprKind::kIndex &&
                      v->init->kind != ExprKind::kDeclRef &&
                      v->init->kind != ExprKind::kCall;
        if (expand) init = std::move(v->init);
        auto ds = std::make_unique<DeclStmt>();
        Type::Ptr vt = v->type;
        std::string vname = v->name;
        ds->vars.push_back(std::move(v));
        out.push_back(std::move(ds));
        if (!expand) continue;
        int n = vt->vector_width();
        for (int i = 0; i < n; ++i) {
          ExprPtr rhs_i = ExtractComponent(*init, i);
          if (!rhs_i)
            return Untranslatable(diags_, init->loc,
                                  "unsupported 8/16-component vector "
                                  "initializer");
          auto base_ref = MakeRef(vname);
          base_ref->type = vt;
          auto mem = MakeMember(std::move(base_ref),
                                "s" + std::to_string(i));
          mem->is_swizzle = true;
          mem->swizzle = {i};
          mem->type = Type::Scalar(vt->scalar_kind());
          auto es = std::make_unique<ExprStmt>();
          es->expr = MakeAssign(std::move(mem), std::move(rhs_i));
          out.push_back(std::move(es));
        }
      }
      d->vars.clear();
      return std::optional<std::vector<StmtPtr>>(std::move(out));
    }
    return std::optional<std::vector<StmtPtr>>();
  }

  // ---- pass 3: remaining swizzles on <=4-wide vectors ----
  Status RewriteNarrowSwizzles() {
    auto fix = [&](ExprPtr& e) -> Status {
      if (e->kind == ExprKind::kAssign) {
        Expr* lhs = e->As<AssignExpr>()->lhs.get();
        if (lhs->kind == ExprKind::kMember &&
            lhs->As<MemberExpr>()->is_swizzle &&
            lhs->As<MemberExpr>()->swizzle.size() > 1)
          return Untranslatable(diags_, e->loc,
                                "swizzle assignment nested inside an "
                                "expression");
      }
      if (e->kind != ExprKind::kMember) return OkStatus();
      auto* m = e->As<MemberExpr>();
      if (!m->is_swizzle) return OkStatus();
      if (IsWideVector(m->base->type)) {
        if (m->swizzle.size() > 1)
          return Untranslatable(diags_, e->loc,
                                "lo/hi/even/odd of an 8/16-component "
                                "vector outside an assignment");
        return OkStatus();  // canonical decimal sN; becomes a struct field
      }
      static const char* kXyzw[] = {"x", "y", "z", "w"};
      if (m->swizzle.size() == 1) {
        // CUDA supports only x/y/z/w spellings; components >= 4 can only
        // come from lowered wide vectors and keep their sN field names.
        if (m->swizzle[0] < 4) m->member = kXyzw[m->swizzle[0]];
        return OkStatus();
      }
      // Multi-component rvalue swizzle: a.lo -> make_float2(a.x, a.y).
      if (ContainsCall(*m->base))
        return Untranslatable(diags_, e->loc,
                              "vector swizzle of a call result");
      ScalarKind ek = m->base->type->scalar_kind();
      int n = static_cast<int>(m->swizzle.size());
      auto call = std::make_unique<CallExpr>();
      call->callee = MakeRef("make_" + VectorTypeName(ek, n));
      for (int idx : m->swizzle) {
        auto mem = MakeMember(CloneExpr(*m->base), kXyzw[idx]);
        mem->is_swizzle = true;
        mem->swizzle = {idx};
        call->args.push_back(std::move(mem));
      }
      call->type = Type::Vector(ek, n);
      call->loc = e->loc;
      e = std::move(call);
      return OkStatus();
    };
    return ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), fix);
    });
  }

  // ---- pass 4: lower 8/16-component vectors to structs ----
  Status LowerWideVectors() {
    // Collect used wide types.
    std::set<std::pair<ScalarKind, int>> used;
    auto collect = [&](const Type::Ptr& t) -> Type::Ptr {
      if (IsWideVector(t)) used.insert({t->scalar_kind(), t->vector_width()});
      return nullptr;
    };
    BRIDGECL_RETURN_IF_ERROR(ReplaceTypesEverywhere(tu_, collect));
    if (used.empty()) return OkStatus();

    std::unordered_map<std::string, const StructDecl*> structs;
    std::vector<DeclPtr> new_decls;
    for (const auto& [ek, w] : used) {
      auto sd = std::make_unique<StructDecl>();
      sd->is_typedef = true;
      sd->name = "__oc2cu_" + VectorTypeName(ek, w);
      for (int i = 0; i < w; ++i) {
        StructField f;
        f.name = "s" + std::to_string(i);
        f.type = Type::Scalar(ek);
        f.offset = i * ScalarByteSize(ek);
        sd->fields.push_back(std::move(f));
      }
      sd->alignment = ScalarByteSize(ek);
      sd->byte_size = w * ScalarByteSize(ek);
      structs[VectorTypeName(ek, w)] = sd.get();
      new_decls.push_back(std::move(sd));
    }
    auto replace = [&](const Type::Ptr& t) -> Type::Ptr {
      if (!IsWideVector(t)) return nullptr;
      return Type::Struct(
          structs[VectorTypeName(t->scalar_kind(), t->vector_width())]);
    };
    BRIDGECL_RETURN_IF_ERROR(ReplaceTypesEverywhere(tu_, replace));
    // Clear swizzle flags on members whose base is now a struct; they are
    // plain field accesses.
    BRIDGECL_RETURN_IF_ERROR(ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), [&](ExprPtr& e) -> Status {
        if (e->kind == ExprKind::kMember) {
          auto* m = e->As<MemberExpr>();
          if (m->is_swizzle && IsWideVector(m->base->type)) {
            m->is_swizzle = false;
            m->swizzle.clear();
          }
        }
        if (e->kind == ExprKind::kVectorLit &&
            IsWideVector(e->As<VectorLitExpr>()->vec_type))
          return Untranslatable(diags_, e->loc,
                                "8/16-component vector literal outside a "
                                "declaration");
        return OkStatus();
      });
    }));
    for (auto it = new_decls.rbegin(); it != new_decls.rend(); ++it)
      tu_.decls.insert(tu_.decls.begin(), std::move(*it));
    return OkStatus();
  }

  // ---- pass 5: built-in function mapping (§3.3, §3.7, §5) ----
  Status RewriteBuiltins() {
    auto fix = [&](ExprPtr& e) -> Status {
      if (e->kind != ExprKind::kCall) return OkStatus();
      auto* c = e->As<CallExpr>();
      std::string name = c->callee_name();
      if (name.empty()) return OkStatus();

      auto dim_of = [&]() -> StatusOr<int> {
        if (c->args.size() != 1)
          return Untranslatable(diags_, e->loc,
                                name + " with a non-literal dimension");
        const Expr* a = c->args[0].get();
        while (a->kind == ExprKind::kParen) a = a->As<ParenExpr>()->inner.get();
        if (a->kind != ExprKind::kIntLit)
          return Untranslatable(diags_, e->loc,
                                name + " with a non-literal dimension");
        int d = static_cast<int>(a->As<IntLitExpr>()->value);
        if (d < 0 || d > 2)
          return Untranslatable(diags_, e->loc, name + " dimension > 2");
        return d;
      };
      static const char* kXyz[] = {"x", "y", "z"};
      auto builtin_member = [&](const char* base, int d) {
        auto r = MakeRef(base);
        r->is_builtin = true;
        auto m = MakeMember(std::move(r), kXyz[d]);
        m->is_swizzle = true;
        m->swizzle = {d};
        m->type = Type::UIntTy();
        return m;
      };

      if (name == "get_local_id" || name == "get_group_id" ||
          name == "get_local_size" || name == "get_num_groups") {
        BRIDGECL_ASSIGN_OR_RETURN(int d, dim_of());
        const char* base = name == "get_local_id"     ? "threadIdx"
                           : name == "get_group_id"   ? "blockIdx"
                           : name == "get_local_size" ? "blockDim"
                                                      : "gridDim";
        e = builtin_member(base, d);
        return OkStatus();
      }
      if (name == "get_global_id") {
        BRIDGECL_ASSIGN_OR_RETURN(int d, dim_of());
        auto mul = MakeBinary(BinaryOp::kMul, builtin_member("blockIdx", d),
                              builtin_member("blockDim", d));
        auto add = MakeBinary(BinaryOp::kAdd, std::move(mul),
                              builtin_member("threadIdx", d));
        auto p = std::make_unique<ParenExpr>();
        p->inner = std::move(add);
        p->type = Type::UIntTy();
        e = std::move(p);
        return OkStatus();
      }
      if (name == "get_global_size") {
        BRIDGECL_ASSIGN_OR_RETURN(int d, dim_of());
        auto mul = MakeBinary(BinaryOp::kMul, builtin_member("gridDim", d),
                              builtin_member("blockDim", d));
        auto p = std::make_unique<ParenExpr>();
        p->inner = std::move(mul);
        p->type = Type::UIntTy();
        e = std::move(p);
        return OkStatus();
      }
      if (name == "get_work_dim") {
        e = MakeIntLit(3);
        return OkStatus();
      }
      if (name == "get_global_offset") {
        e = MakeIntLit(0);
        return OkStatus();
      }
      if (name == "barrier") {
        c->args.clear();
        c->callee = MakeRef("__syncthreads");
        return OkStatus();
      }
      if (name == "mem_fence" || name == "read_mem_fence" ||
          name == "write_mem_fence") {
        c->args.clear();
        c->callee = MakeRef("__threadfence_block");
        return OkStatus();
      }
      // Fast-math variants.
      static const std::unordered_map<std::string, std::string> kRename = {
          {"native_exp", "__expf"},     {"native_log", "__logf"},
          {"native_sin", "__sinf"},     {"native_cos", "__cosf"},
          {"native_sqrt", "sqrtf"},     {"native_rsqrt", "rsqrtf"},
          {"native_divide", "__fdividef"}, {"half_sqrt", "sqrtf"},
          {"mad", "fma"},               {"mul24", "__mul24"},
          {"popcount", "__popc"},       {"clz", "__clz"},
          {"atomic_add", "atomicAdd"},  {"atomic_sub", "atomicSub"},
          {"atomic_xchg", "atomicExch"},{"atomic_cmpxchg", "atomicCAS"},
          {"atomic_min", "atomicMin"},  {"atomic_max", "atomicMax"},
          {"atomic_and", "atomicAnd"},  {"atomic_or", "atomicOr"},
          {"atomic_xor", "atomicXor"},  {"atom_add", "atomicAdd"},
          {"atom_inc", "atomicInc"},
      };
      if (auto it = kRename.find(name); it != kRename.end()) {
        c->callee = MakeRef(it->second);
        if (name == "atom_inc") {
          c->args.push_back(MakeIntLit(0xffffffffu));
        }
        return OkStatus();
      }
      // §3.7: OpenCL atomic_inc has no limit; CUDA atomicInc(p, max)
      // degenerates to it with the maximum limit.
      if (name == "atomic_inc" || name == "atomic_dec") {
        c->callee =
            MakeRef(name == "atomic_inc" ? "atomicInc" : "atomicDec");
        c->args.push_back(MakeIntLit(0xffffffffu));
        return OkStatus();
      }
      if (name == "clamp") {
        if (c->args.size() != 3)
          return Untranslatable(diags_, e->loc, "clamp arity");
        bool flt = c->args[0]->type && (c->args[0]->type->is_float() ||
                                        (c->args[0]->type->is_vector() &&
                                         IsFloatScalar(
                                             c->args[0]->type->scalar_kind())));
        std::vector<ExprPtr> inner_args;
        inner_args.push_back(std::move(c->args[0]));
        inner_args.push_back(std::move(c->args[1]));
        auto inner = MakeCall(flt ? "fmax" : "max", std::move(inner_args));
        std::vector<ExprPtr> outer_args;
        outer_args.push_back(std::move(inner));
        outer_args.push_back(std::move(c->args[2]));
        e = MakeCall(flt ? "fmin" : "min", std::move(outer_args));
        return OkStatus();
      }
      if (name == "select") {
        if (c->args.size() != 3)
          return Untranslatable(diags_, e->loc, "select arity");
        // Scalar select(a,b,c) -> (c ? b : a); per-component vector
        // selection has no CUDA expression form.
        if (c->args[2]->type && c->args[2]->type->is_vector())
          return Untranslatable(diags_, e->loc,
                                "vector select() has no CUDA counterpart");
        auto cond = std::make_unique<ConditionalExpr>();
        cond->cond = std::move(c->args[2]);
        cond->then_expr = std::move(c->args[1]);
        cond->else_expr = std::move(c->args[0]);
        auto p = std::make_unique<ParenExpr>();
        p->type = e->type;
        p->inner = std::move(cond);
        e = std::move(p);
        return OkStatus();
      }
      if (name == "mix") {
        if (c->args.size() != 3)
          return Untranslatable(diags_, e->loc, "mix arity");
        // mix(a,b,t) -> (a + (b - a) * t)
        ExprPtr a2 = CloneExpr(*c->args[0]);
        auto sub = MakeBinary(BinaryOp::kSub, std::move(c->args[1]),
                              std::move(a2));
        auto psub = std::make_unique<ParenExpr>();
        psub->inner = std::move(sub);
        auto mul = MakeBinary(BinaryOp::kMul, std::move(psub),
                              std::move(c->args[2]));
        auto add = MakeBinary(BinaryOp::kAdd, std::move(c->args[0]),
                              std::move(mul));
        auto p = std::make_unique<ParenExpr>();
        p->inner = std::move(add);
        e = std::move(p);
        return OkStatus();
      }
      // Image/sampler, conversion, and vload/vstore built-ins become calls
      // into the CUDA-side wrapper device library (§5).
      if (StartsWith(name, "read_image") || StartsWith(name, "write_image") ||
          StartsWith(name, "get_image") || StartsWith(name, "convert_") ||
          StartsWith(name, "as_")) {
        if (FindBuiltinFunction(name, Dialect::kOpenCL).has_value()) {
          c->callee = MakeRef("__oc2cu_" + name);
        }
        return OkStatus();
      }
      if (StartsWith(name, "vload") || StartsWith(name, "vstore")) {
        int w = std::atoi(name.c_str() + (name[1] == 'l' ? 5 : 6));
        if (w > 4)
          return Untranslatable(diags_, e->loc,
                                name + " (8/16-wide vector load/store)");
        c->callee = MakeRef("__oc2cu_" + name);
        return OkStatus();
      }
      return OkStatus();
    };
    return ForEachBody([&](FunctionDecl& fn) {
      return MutateExprs(fn.body.get(), fix);
    });
  }

  // ---- pass 6: dynamic __local / __constant parameters (Fig 5, §4) ----
  Status RewriteDynamicParams() {
    bool any_const_arena = false;
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* fn = d->As<FunctionDecl>();
      if (!fn->quals.is_kernel || fn->body == nullptr) continue;
      KernelTranslationInfo info;
      info.name = fn->name;
      info.original_param_count = static_cast<int>(fn->params.size());
      info.param_roles.assign(fn->params.size(),
                              KernelTranslationInfo::ParamRole::kPlain);
      info.param_is_image.resize(fn->params.size());
      for (size_t i = 0; i < fn->params.size(); ++i)
        info.param_is_image[i] =
            fn->params[i]->type && fn->params[i]->type->is_image();

      std::vector<StmtPtr> prologue;
      std::vector<std::string> local_sizes_so_far;
      std::vector<std::string> const_sizes_so_far;
      bool any_local = false;

      for (size_t i = 0; i < fn->params.size(); ++i) {
        VarDecl* p = fn->params[i].get();
        if (!p->type || !p->type->is_pointer()) continue;
        AddressSpace space = p->type->pointee_space();
        if (space != AddressSpace::kLocal &&
            space != AddressSpace::kConstant)
          continue;
        bool is_local = space == AddressSpace::kLocal;
        info.param_roles[i] =
            is_local ? KernelTranslationInfo::ParamRole::kDynLocalSize
                     : KernelTranslationInfo::ParamRole::kDynConstSize;
        std::string orig = p->name;
        Type::Ptr elem = p->type->pointee();
        // Parameter becomes `size_t <name>__size`.
        std::string size_name = orig + "__size";
        p->name = size_name;
        p->type = Type::SizeTy();
        p->quals = VarQuals{};
        // Body prologue: T* orig = (T*)(<arena> + prior sizes...).
        ExprPtr addr = MakeRef(is_local ? kSharedArena : kConstArena);
        auto& so_far = is_local ? local_sizes_so_far : const_sizes_so_far;
        for (const std::string& sz : so_far) {
          addr = MakeBinary(BinaryOp::kAdd, std::move(addr), MakeRef(sz));
        }
        auto paren = std::make_unique<ParenExpr>();
        paren->inner = std::move(addr);
        auto cast = std::make_unique<CastExpr>();
        cast->style = CastStyle::kCStyle;
        cast->target = Type::Pointer(elem, AddressSpace::kPrivate);
        cast->operand = std::move(paren);
        auto ds = std::make_unique<DeclStmt>();
        auto var = std::make_unique<VarDecl>();
        var->name = orig;
        var->type = Type::Pointer(elem, AddressSpace::kPrivate);
        var->init = std::move(cast);
        ds->vars.push_back(std::move(var));
        prologue.push_back(std::move(ds));
        so_far.push_back(size_name);
        any_local |= is_local;
        any_const_arena |= !is_local;
      }
      if (any_local) {
        // `extern __shared__ char __OC2CU_shared_mem[];` first.
        auto ds = std::make_unique<DeclStmt>();
        auto var = std::make_unique<VarDecl>();
        var->name = kSharedArena;
        var->type = Type::Array(Type::Scalar(ScalarKind::kChar), 0);
        var->quals.space = AddressSpace::kLocal;
        var->quals.space_explicit = true;
        var->quals.is_extern = true;
        ds->vars.push_back(std::move(var));
        prologue.insert(prologue.begin(), std::move(ds));
      }
      for (auto it = prologue.rbegin(); it != prologue.rend(); ++it)
        fn->body->body.insert(fn->body->body.begin(), std::move(*it));
      kernels_.push_back(std::move(info));
    }
    if (any_const_arena) {
      auto var = std::make_unique<VarDecl>();
      var->name = kConstArena;
      var->type =
          Type::Array(Type::Scalar(ScalarKind::kChar), kConstArenaBytes);
      var->quals.space = AddressSpace::kConstant;
      var->quals.space_explicit = true;
      tu_.decls.insert(tu_.decls.begin(), std::move(var));
    }
    return OkStatus();
  }

  Status ForEachBody(const std::function<Status(FunctionDecl&)>& fn) {
    for (auto& d : tu_.decls) {
      if (d->kind != DeclKind::kFunction) continue;
      auto* f = d->As<FunctionDecl>();
      if (f->body) BRIDGECL_RETURN_IF_ERROR(fn(*f));
    }
    return OkStatus();
  }

  TranslationUnit& tu_;
  DiagnosticEngine& diags_;
  TranslateOptions opts_;
  std::vector<KernelTranslationInfo> kernels_;
  int tmp_counter_ = 0;
};

}  // namespace

StatusOr<TranslationResult> TranslateOpenClToCuda(
    const std::string& source, DiagnosticEngine& diags,
    const TranslateOptions& opts) {
  ParseOptions popts;
  popts.dialect = Dialect::kOpenCL;
  BRIDGECL_ASSIGN_OR_RETURN(auto tu,
                            ParseTranslationUnit(source, popts, diags));
  SemaOptions sopts;
  sopts.dialect = Dialect::kOpenCL;
  BRIDGECL_RETURN_IF_ERROR(Analyze(*tu, sopts, diags));
  ClToCu pass(*tu, diags, opts);
  return pass.Run();
}

}  // namespace bridgecl::translator
