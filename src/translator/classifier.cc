#include "translator/classifier.h"

#include <algorithm>
#include <set>

#include "support/strings.h"
#include "translator/host_rewriter.h"

namespace bridgecl::translator {

const char* FailureCategoryName(FailureCategory c) {
  switch (c) {
    case FailureCategory::kNoCorrespondingFunctions:
      return "No corresponding functions";
    case FailureCategory::kUnsupportedLibraries:
      return "Unsupported libraries";
    case FailureCategory::kUnsupportedLanguageExtensions:
      return "Unsupported language extensions";
    case FailureCategory::kOpenGlBinding:
      return "OpenGL binding";
    case FailureCategory::kUseOfPtx:
      return "Use of PTX";
    case FailureCategory::kUseOfUva:
      return "Use of unified virtual address space";
  }
  return "?";
}

std::vector<FailureCategory> Classification::Categories() const {
  std::set<FailureCategory> seen;
  for (const auto& i : issues) seen.insert(i.category);
  return {seen.begin(), seen.end()};
}

namespace {

struct Pattern {
  const char* needle;
  FailureCategory category;
};

/// Host-level blockers: library calls, interop, PTX, UVA. Device-level
/// blockers are detected by the translator itself, but the same spellings
/// are matched here too so that apps whose device code also fails to parse
/// (C++ classes etc.) are still categorized.
const Pattern kHostPatterns[] = {
    // -- no corresponding functions (host side) --
    {"cudaMemGetInfo", FailureCategory::kNoCorrespondingFunctions},
    {"cudaFuncGetAttributes", FailureCategory::kNoCorrespondingFunctions},
    // -- unsupported language extensions left on the host side: device
    // qualifiers inside C++ classes the splitter cannot extract --
    {"__device__", FailureCategory::kUnsupportedLanguageExtensions},
    {"__global__", FailureCategory::kUnsupportedLanguageExtensions},
    // -- unsupported libraries --
    {"thrust::", FailureCategory::kUnsupportedLibraries},
    {"cufft", FailureCategory::kUnsupportedLibraries},
    {"cublas", FailureCategory::kUnsupportedLibraries},
    {"curand", FailureCategory::kUnsupportedLibraries},
    {"cudpp", FailureCategory::kUnsupportedLibraries},
    {"nppi", FailureCategory::kUnsupportedLibraries},
    // -- OpenGL binding --
    {"cudaGraphicsGLRegisterBuffer", FailureCategory::kOpenGlBinding},
    {"cudaGraphicsGLRegisterImage", FailureCategory::kOpenGlBinding},
    {"cudaGLMapBufferObject", FailureCategory::kOpenGlBinding},
    {"cudaGLRegisterBufferObject", FailureCategory::kOpenGlBinding},
    {"glutInit", FailureCategory::kOpenGlBinding},
    {"glBindBuffer", FailureCategory::kOpenGlBinding},
    {"glDrawArrays", FailureCategory::kOpenGlBinding},
    // -- PTX --
    {"cuModuleLoad", FailureCategory::kUseOfPtx},
    {"cuModuleLoadData", FailureCategory::kUseOfPtx},
    {"cuLinkCreate", FailureCategory::kUseOfPtx},
    {"nvrtc", FailureCategory::kUseOfPtx},
    {".ptx", FailureCategory::kUseOfPtx},
    {"asm volatile", FailureCategory::kUseOfPtx},
    {"asm(", FailureCategory::kUseOfPtx},
    // -- unified virtual address space / zero copy / P2P --
    {"cudaHostAlloc", FailureCategory::kUseOfUva},
    {"cudaHostGetDevicePointer", FailureCategory::kUseOfUva},
    {"cudaHostRegister", FailureCategory::kUseOfUva},
    {"cudaMemcpyDefault", FailureCategory::kUseOfUva},
    {"cudaDeviceEnablePeerAccess", FailureCategory::kUseOfUva},
    {"cudaMemcpyPeer", FailureCategory::kUseOfUva},
};

/// Device-code spellings mapped onto categories. Used both for mapping the
/// translator's kUntranslatable diagnostics and as a fallback when device
/// code cannot even be parsed (real C++ classes etc.).
const Pattern kDevicePatterns[] = {
    {"__shfl", FailureCategory::kNoCorrespondingFunctions},
    {"__all", FailureCategory::kNoCorrespondingFunctions},
    {"__any", FailureCategory::kNoCorrespondingFunctions},
    {"__ballot", FailureCategory::kNoCorrespondingFunctions},
    {"clock()", FailureCategory::kNoCorrespondingFunctions},
    {"clock64", FailureCategory::kNoCorrespondingFunctions},
    {"assert(", FailureCategory::kNoCorrespondingFunctions},
    {"warpSize", FailureCategory::kNoCorrespondingFunctions},
    {"atomicInc", FailureCategory::kNoCorrespondingFunctions},
    {"atomicDec", FailureCategory::kNoCorrespondingFunctions},
    {"asm volatile", FailureCategory::kUseOfPtx},
    {"asm(", FailureCategory::kUseOfPtx},
    {"printf", FailureCategory::kUnsupportedLanguageExtensions},
    {"class ", FailureCategory::kUnsupportedLanguageExtensions},
    {"new ", FailureCategory::kUnsupportedLanguageExtensions},
    {"delete ", FailureCategory::kUnsupportedLanguageExtensions},
    {"virtual ", FailureCategory::kUnsupportedLanguageExtensions},
    {"operator", FailureCategory::kUnsupportedLanguageExtensions},
    {"(*", FailureCategory::kUnsupportedLanguageExtensions},
};

void MatchPatterns(const std::string& text, const Pattern* patterns,
                   size_t count, std::vector<ClassificationIssue>* out) {
  for (size_t i = 0; i < count; ++i) {
    if (text.find(patterns[i].needle) != std::string::npos) {
      out->push_back(
          {patterns[i].category, std::string(patterns[i].needle)});
    }
  }
}

/// Map a translator diagnostic onto a Table 3 category.
FailureCategory CategoryForDiagnostic(const std::string& message) {
  if (message.find("no corresponding OpenCL function") != std::string::npos ||
      message.find("warpSize") != std::string::npos ||
      message.find("atomicInc") != std::string::npos ||
      message.find("atomicDec") != std::string::npos ||
      message.find("wrap-around") != std::string::npos)
    return FailureCategory::kNoCorrespondingFunctions;
  // Everything else the device translator rejects is a language-extension
  // problem: function pointers, C++ classes, struct-of-pointer kernel
  // params, multi-space pointers, unexpandable vector forms.
  return FailureCategory::kUnsupportedLanguageExtensions;
}

}  // namespace

Classification ClassifyCudaApplication(const std::string& cuda_source,
                                       const TranslateOptions& opts) {
  Classification result;
  auto [device, host] = SplitCudaSource(cuda_source);

  // Host-side blockers.
  MatchPatterns(host, kHostPatterns, std::size(kHostPatterns),
                &result.issues);

  // Device-side: ask the translator.
  DiagnosticEngine diags;
  auto tr = TranslateCudaToOpenCl(device, diags, opts);
  if (tr.ok()) {
    result.translation = std::move(*tr);
  } else {
    std::string msg = diags.has_errors() ? diags.diagnostics().back().message
                                         : tr.status().message();
    // Prefer precise pattern evidence over the generic diagnostic.
    std::vector<ClassificationIssue> dev_issues;
    MatchPatterns(device, kDevicePatterns, std::size(kDevicePatterns),
                  &dev_issues);
    if (dev_issues.empty()) {
      result.issues.push_back({CategoryForDiagnostic(msg), msg});
    } else {
      for (auto& i : dev_issues) result.issues.push_back(std::move(i));
    }
  }

  result.translatable = result.issues.empty() && tr.ok();
  // Stable Table 3 ordering.
  std::stable_sort(result.issues.begin(), result.issues.end(),
                   [](const ClassificationIssue& a,
                      const ClassificationIssue& b) {
                     return static_cast<int>(a.category) <
                            static_cast<int>(b.category);
                   });
  return result;
}

}  // namespace bridgecl::translator
