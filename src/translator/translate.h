// Bidirectional device-code translation between OpenCL C and CUDA — the
// paper's core contribution (§3-§5). Both directions parse the source,
// rewrite the AST, and print target-dialect text plus the per-kernel
// metadata the runtime wrapper libraries need to marshal arguments.
//
// OpenCL → CUDA (§3.4 Fig 2, §4, §5):
//   * work-item built-ins → threadIdx/blockIdx/blockDim/gridDim forms
//   * barrier() → __syncthreads(); mem_fence → __threadfence_block()
//   * dynamic __local params → size_t params + one extern __shared__
//     arena (__OC2CU_shared_mem) carved by offsets (Fig 5)
//   * dynamic __constant params → size_t params + a fixed __constant__
//     arena (__OC2CU_const_mem) carved by offsets (Fig 5)
//   * 8/16-component vectors → C structs; OpenCL-only swizzles expanded
//   * image/sampler built-ins → __oc2cu_* device wrapper functions
//   * atomic_inc/atomic_dec → atomicInc/atomicDec with a max limit
//
// CUDA → OpenCL (§3.4 Fig 3, §4, §5):
//   * threadIdx.x → get_local_id(0) etc.; __syncthreads → barrier
//   * texture references → appended image + sampler kernel parameters;
//     tex1Dfetch/tex1D/tex2D/tex3D → read_image{f,i,ui}
//   * extern __shared__ → appended __local pointer parameter
//   * __device__ globals / runtime-initialized __constant__ globals →
//     appended pointer parameters (static allocation is impossible in
//     OpenCL, §4.2-§4.3)
//   * C++: references → pointers, templates → specializations,
//     C++ casts → C casts
//   * float1-style vectors → scalars; longlong → long
//   * model-specific features (__shfl, __all, clock, assert, printf,
//     atomicInc/Dec wrap semantics) → kUntranslatable (Table 3), unless
//     atomic emulation is explicitly enabled (an extension beyond the
//     paper)
#pragma once

#include <string>
#include <vector>

#include "lang/dialect.h"
#include "support/source_location.h"
#include "support/status.h"

namespace bridgecl::translator {

struct TranslateOptions {
  /// Extension beyond the paper: emulate CUDA atomicInc/atomicDec wrap
  /// semantics in OpenCL with an atomic_cmpxchg loop instead of failing.
  bool allow_atomic_emulation = false;
};

/// Argument-marshalling metadata for one translated kernel.
struct KernelTranslationInfo {
  std::string name;
  int original_param_count = 0;

  // ---- OpenCL→CUDA (consumed by the cl2cu wrapper) ----
  /// Role of each ORIGINAL parameter position after translation.
  enum class ParamRole {
    kPlain,         // passes through unchanged
    kDynLocalSize,  // was __local T*; now size_t, wrapper passes the size
    kDynConstSize,  // was __constant T*; now size_t, wrapper copies the
                    // buffer into the constant arena and passes the size
  };
  std::vector<ParamRole> param_roles;
  /// Image-typed ORIGINAL parameters (image1d_t/image2d_t/image3d_t): the
  /// wrapper must substitute the CLImage descriptor pointer for the
  /// cl_mem handle at these positions (§5, Fig 6).
  std::vector<bool> param_is_image;

  // ---- CUDA→OpenCL (consumed by the cu2cl wrapper) ----
  /// Appended-parameter order is: dynamic-shared pointer (if any), then
  /// one (image, sampler) pair per texture, then one pointer per symbol.
  bool has_dynamic_shared = false;
  std::vector<std::string> texture_params;  // texref names, in append order
  struct SymbolParam {
    std::string name;
    size_t byte_size = 0;
    bool is_constant = false;  // __constant__ vs __device__
  };
  std::vector<SymbolParam> symbol_params;
};

struct TranslationResult {
  std::string source;  // target-dialect device code
  std::vector<KernelTranslationInfo> kernels;

  const KernelTranslationInfo* Find(const std::string& kernel) const {
    for (const auto& k : kernels)
      if (k.name == kernel) return &k;
    return nullptr;
  }
};

/// Translate OpenCL C kernel source to CUDA device code.
StatusOr<TranslationResult> TranslateOpenClToCuda(
    const std::string& source, DiagnosticEngine& diags,
    const TranslateOptions& opts = {});

/// Translate CUDA device code to OpenCL C kernel source.
StatusOr<TranslationResult> TranslateCudaToOpenCl(
    const std::string& source, DiagnosticEngine& diags,
    const TranslateOptions& opts = {});

}  // namespace bridgecl::translator
