// Static CUDA host-code translation — the part of the hybrid framework
// that wrappers cannot cover (§3.2): kernel launches (`<<<...>>>` cannot
// parse under a non-CUDA compiler), cudaMemcpyToSymbol(), and
// cudaMemcpyFromSymbol(). Also performs the §3.4 Figure 3 file split: one
// mixed .cu file becomes a host .cpp file (rewritten) and a device .cl
// file (translated by TranslateCudaToOpenCl).
//
// The rewriter is textual and position-preserving, like the clang-based
// tooling it models: untouched host code passes through byte-for-byte.
#pragma once

#include <string>

#include "support/source_location.h"
#include "support/status.h"
#include "translator/translate.h"

namespace bridgecl::translator {

struct HostRewriteResult {
  /// Rewritten host source (the main.cu.cpp of Figure 3). Launches are
  /// expanded to clSetKernelArg sequences + clEnqueueNDRangeKernel;
  /// cudaMemcpyTo/FromSymbol become clEnqueueWrite/ReadBuffer on the
  /// symbol's dynamically allocated buffer (§4.3).
  std::string host_source;
  /// Translated OpenCL device source (the main.cu.cl of Figure 3).
  std::string device_source;
  /// Device-code translation metadata (argument marshalling info).
  TranslationResult translation;
};

/// Split `cuda_source` (mixed host+device) and rewrite the host side.
StatusOr<HostRewriteResult> RewriteCudaHostCode(
    const std::string& cuda_source, DiagnosticEngine& diags,
    const TranslateOptions& opts = {});

/// Exposed for tests: extract the device entities (__global__/__device__
/// functions, __constant__/__device__ variables, texture references) from
/// a mixed .cu source. Returns {device_code, host_code}.
std::pair<std::string, std::string> SplitCudaSource(
    const std::string& cuda_source);

}  // namespace bridgecl::translator
