// Translatability classifier: decides whether a CUDA application can be
// translated to OpenCL, and if not, why — the six failure categories of
// the paper's Table 3. Device code is judged by actually running the
// CUDA→OpenCL translator on it; host-level blockers (libraries, OpenGL,
// PTX, UVA, cudaMemGetInfo) are detected by scanning the host side.
#pragma once

#include <string>
#include <vector>

#include "support/status.h"
#include "translator/translate.h"

namespace bridgecl::translator {

/// Table 3 row labels, in the paper's order.
enum class FailureCategory {
  kNoCorrespondingFunctions,   // __shfl/__all/clock/assert/cudaMemGetInfo...
  kUnsupportedLibraries,       // Thrust, cuFFT, cuBLAS, cuRAND, CUDPP
  kUnsupportedLanguageExtensions,  // device C++ classes, fn ptrs, printf...
  kOpenGlBinding,              // CUDA-GL interop
  kUseOfPtx,                   // inline PTX / driver-level module loading
  kUseOfUva,                   // unified virtual address space / zero-copy
};

const char* FailureCategoryName(FailureCategory c);

struct ClassificationIssue {
  FailureCategory category;
  std::string evidence;  // the feature that triggered the classification
};

struct Classification {
  bool translatable = true;
  std::vector<ClassificationIssue> issues;  // empty when translatable
  /// Populated when translatable: the translated device code metadata.
  TranslationResult translation;

  /// All distinct categories, in Table 3 order.
  std::vector<FailureCategory> Categories() const;
};

/// Classify a mixed CUDA source file (host + device).
Classification ClassifyCudaApplication(const std::string& cuda_source,
                                       const TranslateOptions& opts = {});

}  // namespace bridgecl::translator
