#include "translator/rewrite_util.h"

namespace bridgecl::translator {

using namespace bridgecl::lang;  // NOLINT: rewriters are lang-dense

Status MutateExprs(ExprPtr& expr, const ExprMutator& fn) {
  if (!expr) return OkStatus();
  switch (expr->kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
    case ExprKind::kStringLit:
    case ExprKind::kDeclRef:
      break;
    case ExprKind::kUnary:
      BRIDGECL_RETURN_IF_ERROR(
          MutateExprs(expr->As<UnaryExpr>()->operand, fn));
      break;
    case ExprKind::kBinary: {
      auto* b = expr->As<BinaryExpr>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(b->lhs, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(b->rhs, fn));
      break;
    }
    case ExprKind::kAssign: {
      auto* a = expr->As<AssignExpr>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(a->lhs, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(a->rhs, fn));
      break;
    }
    case ExprKind::kConditional: {
      auto* c = expr->As<ConditionalExpr>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(c->cond, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(c->then_expr, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(c->else_expr, fn));
      break;
    }
    case ExprKind::kCall: {
      auto* c = expr->As<CallExpr>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(c->callee, fn));
      for (auto& a : c->args) BRIDGECL_RETURN_IF_ERROR(MutateExprs(a, fn));
      break;
    }
    case ExprKind::kIndex: {
      auto* i = expr->As<IndexExpr>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(i->base, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(i->index, fn));
      break;
    }
    case ExprKind::kMember:
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(expr->As<MemberExpr>()->base, fn));
      break;
    case ExprKind::kCast:
      BRIDGECL_RETURN_IF_ERROR(
          MutateExprs(expr->As<CastExpr>()->operand, fn));
      break;
    case ExprKind::kParen:
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(expr->As<ParenExpr>()->inner, fn));
      break;
    case ExprKind::kInitList:
      for (auto& e : expr->As<InitListExpr>()->elems)
        BRIDGECL_RETURN_IF_ERROR(MutateExprs(e, fn));
      break;
    case ExprKind::kSizeof:
      BRIDGECL_RETURN_IF_ERROR(
          MutateExprs(expr->As<SizeofExpr>()->arg_expr, fn));
      break;
    case ExprKind::kVectorLit:
      for (auto& e : expr->As<VectorLitExpr>()->elems)
        BRIDGECL_RETURN_IF_ERROR(MutateExprs(e, fn));
      break;
  }
  return fn(expr);
}

Status MutateExprs(Stmt* stmt, const ExprMutator& fn) {
  if (stmt == nullptr) return OkStatus();
  switch (stmt->kind) {
    case StmtKind::kCompound:
      for (auto& s : stmt->As<CompoundStmt>()->body)
        BRIDGECL_RETURN_IF_ERROR(MutateExprs(s.get(), fn));
      return OkStatus();
    case StmtKind::kDecl:
      for (auto& v : stmt->As<DeclStmt>()->vars)
        if (v->init) BRIDGECL_RETURN_IF_ERROR(MutateExprs(v->init, fn));
      return OkStatus();
    case StmtKind::kExpr:
      return MutateExprs(stmt->As<ExprStmt>()->expr, fn);
    case StmtKind::kIf: {
      auto* i = stmt->As<IfStmt>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(i->cond, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(i->then_stmt.get(), fn));
      return MutateExprs(i->else_stmt.get(), fn);
    }
    case StmtKind::kFor: {
      auto* f = stmt->As<ForStmt>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(f->init.get(), fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(f->cond, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(f->step, fn));
      return MutateExprs(f->body.get(), fn);
    }
    case StmtKind::kWhile: {
      auto* w = stmt->As<WhileStmt>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(w->cond, fn));
      return MutateExprs(w->body.get(), fn);
    }
    case StmtKind::kDo: {
      auto* d = stmt->As<DoStmt>();
      BRIDGECL_RETURN_IF_ERROR(MutateExprs(d->body.get(), fn));
      return MutateExprs(d->cond, fn);
    }
    case StmtKind::kReturn:
      return MutateExprs(stmt->As<ReturnStmt>()->value, fn);
    default:
      return OkStatus();
  }
}

Status MutateStmts(StmtPtr& stmt, const StmtMutator& fn) {
  if (!stmt) return OkStatus();
  switch (stmt->kind) {
    case StmtKind::kCompound:
      for (auto& s : stmt->As<CompoundStmt>()->body)
        BRIDGECL_RETURN_IF_ERROR(MutateStmts(s, fn));
      break;
    case StmtKind::kIf: {
      auto* i = stmt->As<IfStmt>();
      BRIDGECL_RETURN_IF_ERROR(MutateStmts(i->then_stmt, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateStmts(i->else_stmt, fn));
      break;
    }
    case StmtKind::kFor: {
      auto* f = stmt->As<ForStmt>();
      BRIDGECL_RETURN_IF_ERROR(MutateStmts(f->init, fn));
      BRIDGECL_RETURN_IF_ERROR(MutateStmts(f->body, fn));
      break;
    }
    case StmtKind::kWhile:
      BRIDGECL_RETURN_IF_ERROR(MutateStmts(stmt->As<WhileStmt>()->body, fn));
      break;
    case StmtKind::kDo:
      BRIDGECL_RETURN_IF_ERROR(MutateStmts(stmt->As<DoStmt>()->body, fn));
      break;
    default:
      break;
  }
  return fn(stmt);
}

Status VisitVarDecls(Stmt* stmt, const VarVisitor& fn) {
  if (stmt == nullptr) return OkStatus();
  switch (stmt->kind) {
    case StmtKind::kCompound:
      for (auto& s : stmt->As<CompoundStmt>()->body)
        BRIDGECL_RETURN_IF_ERROR(VisitVarDecls(s.get(), fn));
      return OkStatus();
    case StmtKind::kDecl:
      for (auto& v : stmt->As<DeclStmt>()->vars)
        BRIDGECL_RETURN_IF_ERROR(fn(v.get()));
      return OkStatus();
    case StmtKind::kIf: {
      auto* i = stmt->As<IfStmt>();
      BRIDGECL_RETURN_IF_ERROR(VisitVarDecls(i->then_stmt.get(), fn));
      return VisitVarDecls(i->else_stmt.get(), fn);
    }
    case StmtKind::kFor: {
      auto* f = stmt->As<ForStmt>();
      BRIDGECL_RETURN_IF_ERROR(VisitVarDecls(f->init.get(), fn));
      return VisitVarDecls(f->body.get(), fn);
    }
    case StmtKind::kWhile:
      return VisitVarDecls(stmt->As<WhileStmt>()->body.get(), fn);
    case StmtKind::kDo:
      return VisitVarDecls(stmt->As<DoStmt>()->body.get(), fn);
    default:
      return OkStatus();
  }
}

Type::Ptr ReplaceType(const Type::Ptr& t, const TypeReplacer& fn) {
  if (!t) return t;
  if (Type::Ptr direct = fn(t)) return direct;
  switch (t->kind()) {
    case TypeKind::kPointer: {
      Type::Ptr inner = ReplaceType(t->pointee(), fn);
      if (inner == t->pointee()) return t;
      return Type::Pointer(inner, t->pointee_space());
    }
    case TypeKind::kArray: {
      Type::Ptr inner = ReplaceType(t->element(), fn);
      if (inner == t->element()) return t;
      return Type::Array(inner, t->array_extent());
    }
    default:
      return t;
  }
}

Status ReplaceTypesEverywhere(TranslationUnit& tu, const TypeReplacer& fn) {
  auto fix_var = [&](VarDecl* v) -> Status {
    v->type = ReplaceType(v->type, fn);
    return OkStatus();
  };
  auto fix_expr = [&](ExprPtr& e) -> Status {
    if (e->kind == ExprKind::kCast) {
      auto* c = e->As<CastExpr>();
      c->target = ReplaceType(c->target, fn);
    } else if (e->kind == ExprKind::kSizeof) {
      auto* s = e->As<SizeofExpr>();
      if (s->arg_type) s->arg_type = ReplaceType(s->arg_type, fn);
    } else if (e->kind == ExprKind::kVectorLit) {
      auto* v = e->As<VectorLitExpr>();
      v->vec_type = ReplaceType(v->vec_type, fn);
    }
    return OkStatus();
  };
  for (auto& d : tu.decls) {
    switch (d->kind) {
      case DeclKind::kVar:
        BRIDGECL_RETURN_IF_ERROR(fix_var(d->As<VarDecl>()));
        if (d->As<VarDecl>()->init)
          BRIDGECL_RETURN_IF_ERROR(MutateExprs(d->As<VarDecl>()->init,
                                               fix_expr));
        break;
      case DeclKind::kStruct:
        for (auto& f : d->As<StructDecl>()->fields)
          f.type = ReplaceType(f.type, fn);
        break;
      case DeclKind::kTypedef: {
        auto* td = d->As<TypedefDecl>();
        td->underlying = ReplaceType(td->underlying, fn);
        break;
      }
      case DeclKind::kFunction: {
        auto* f = d->As<FunctionDecl>();
        f->return_type = ReplaceType(f->return_type, fn);
        for (auto& p : f->params) BRIDGECL_RETURN_IF_ERROR(fix_var(p.get()));
        if (f->body) {
          BRIDGECL_RETURN_IF_ERROR(VisitVarDecls(f->body.get(), fix_var));
          BRIDGECL_RETURN_IF_ERROR(MutateExprs(f->body.get(), fix_expr));
        }
        break;
      }
      default:
        break;
    }
  }
  return OkStatus();
}

ExprPtr ExtractComponent(const Expr& e, int i) {
  switch (e.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
      return CloneExpr(e);  // scalar broadcast
    case ExprKind::kDeclRef: {
      if (e.type && e.type->is_vector()) {
        static const char* kXyzw[] = {"x", "y", "z", "w"};
        bool wide = e.type->vector_width() > 4;
        auto m = MakeMember(CloneExpr(e), (!wide && i < 4)
                                              ? kXyzw[i]
                                              : "s" + std::to_string(i));
        m->is_swizzle = true;
        m->swizzle = {i};
        if (e.type) m->type = Type::Scalar(e.type->scalar_kind());
        return m;
      }
      return CloneExpr(e);  // scalar variable broadcast
    }
    case ExprKind::kMember: {
      const auto* m = e.As<MemberExpr>();
      if (m->is_swizzle) {
        if (i >= static_cast<int>(m->swizzle.size())) {
          if (m->swizzle.size() == 1) return CloneExpr(e);  // broadcast
          return nullptr;
        }
        int src = m->swizzle[i];
        ExprPtr base = CloneExpr(*m->base);
        static const char* kXyzw[] = {"x", "y", "z", "w"};
        auto out = MakeMember(std::move(base),
                              src < 4 ? kXyzw[src]
                                      : "s" + std::to_string(src));
        out->is_swizzle = true;
        out->swizzle = {src};
        if (m->base->type)
          out->type = Type::Scalar(m->base->type->scalar_kind());
        return out;
      }
      // Struct member of vector type.
      if (e.type && e.type->is_vector()) {
        static const char* kXyzw[] = {"x", "y", "z", "w"};
        bool wide = e.type->vector_width() > 4;
        auto out = MakeMember(CloneExpr(e), (!wide && i < 4)
                                                ? kXyzw[i]
                                                : "s" + std::to_string(i));
        out->is_swizzle = true;
        out->swizzle = {i};
        out->type = Type::Scalar(e.type->scalar_kind());
        return out;
      }
      return CloneExpr(e);
    }
    case ExprKind::kIndex: {
      if (e.type && e.type->is_vector() && !ContainsCall(e)) {
        static const char* kXyzw[] = {"x", "y", "z", "w"};
        bool wide = e.type->vector_width() > 4;
        auto out = MakeMember(CloneExpr(e), (!wide && i < 4)
                                                ? kXyzw[i]
                                                : "s" + std::to_string(i));
        out->is_swizzle = true;
        out->swizzle = {i};
        out->type = Type::Scalar(e.type->scalar_kind());
        return out;
      }
      return e.type && e.type->is_vector() ? nullptr : CloneExpr(e);
    }
    case ExprKind::kParen: {
      ExprPtr inner = ExtractComponent(*e.As<ParenExpr>()->inner, i);
      if (!inner) return nullptr;
      auto p = std::make_unique<ParenExpr>();
      p->inner = std::move(inner);
      return p;
    }
    case ExprKind::kVectorLit: {
      const auto* v = e.As<VectorLitExpr>();
      if (v->elems.size() == 1) return CloneExpr(*v->elems[0]);
      if (i < static_cast<int>(v->elems.size()))
        return CloneExpr(*v->elems[i]);
      return nullptr;
    }
    case ExprKind::kBinary: {
      const auto* b = e.As<BinaryExpr>();
      ExprPtr l = ExtractComponent(*b->lhs, i);
      ExprPtr r = ExtractComponent(*b->rhs, i);
      if (!l || !r) return nullptr;
      return MakeBinary(b->op, std::move(l), std::move(r));
    }
    case ExprKind::kUnary: {
      const auto* u = e.As<UnaryExpr>();
      if (u->op != UnaryOp::kMinus && u->op != UnaryOp::kPlus &&
          u->op != UnaryOp::kBitNot)
        return nullptr;
      ExprPtr inner = ExtractComponent(*u->operand, i);
      if (!inner) return nullptr;
      auto out = std::make_unique<UnaryExpr>();
      out->op = u->op;
      out->operand = std::move(inner);
      return out;
    }
    case ExprKind::kConditional: {
      const auto* c = e.As<ConditionalExpr>();
      if (ContainsCall(*c->cond)) return nullptr;
      ExprPtr t = ExtractComponent(*c->then_expr, i);
      ExprPtr f = ExtractComponent(*c->else_expr, i);
      if (!t || !f) return nullptr;
      auto out = std::make_unique<ConditionalExpr>();
      out->cond = CloneExpr(*c->cond);
      out->then_expr = std::move(t);
      out->else_expr = std::move(f);
      return out;
    }
    default:
      return nullptr;
  }
}

bool ContainsCall(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kCall:
      return true;
    case ExprKind::kUnary:
      return ContainsCall(*e.As<UnaryExpr>()->operand);
    case ExprKind::kBinary: {
      const auto* b = e.As<BinaryExpr>();
      return ContainsCall(*b->lhs) || ContainsCall(*b->rhs);
    }
    case ExprKind::kAssign: {
      const auto* a = e.As<AssignExpr>();
      return ContainsCall(*a->lhs) || ContainsCall(*a->rhs);
    }
    case ExprKind::kConditional: {
      const auto* c = e.As<ConditionalExpr>();
      return ContainsCall(*c->cond) || ContainsCall(*c->then_expr) ||
             ContainsCall(*c->else_expr);
    }
    case ExprKind::kIndex: {
      const auto* i = e.As<IndexExpr>();
      return ContainsCall(*i->base) || ContainsCall(*i->index);
    }
    case ExprKind::kMember:
      return ContainsCall(*e.As<MemberExpr>()->base);
    case ExprKind::kCast:
      return ContainsCall(*e.As<CastExpr>()->operand);
    case ExprKind::kParen:
      return ContainsCall(*e.As<ParenExpr>()->inner);
    case ExprKind::kInitList: {
      for (const auto& el : e.As<InitListExpr>()->elems)
        if (ContainsCall(*el)) return true;
      return false;
    }
    case ExprKind::kSizeof: {
      const auto* s = e.As<SizeofExpr>();
      return s->arg_expr && ContainsCall(*s->arg_expr);
    }
    case ExprKind::kVectorLit: {
      for (const auto& el : e.As<VectorLitExpr>()->elems)
        if (ContainsCall(*el)) return true;
      return false;
    }
    default:
      return false;
  }
}

}  // namespace bridgecl::translator
