#include "apps/failure_catalog.h"

#include "support/strings.h"

namespace bridgecl::apps {
namespace {

using translator::FailureCategory;

constexpr FailureCategory kNoFn = FailureCategory::kNoCorrespondingFunctions;
constexpr FailureCategory kLibs = FailureCategory::kUnsupportedLibraries;
constexpr FailureCategory kLang =
    FailureCategory::kUnsupportedLanguageExtensions;
constexpr FailureCategory kGl = FailureCategory::kOpenGlBinding;
constexpr FailureCategory kPtx = FailureCategory::kUseOfPtx;
constexpr FailureCategory kUva = FailureCategory::kUseOfUva;

// ---- per-category source templates (feature-bearing, minimal) ----

std::string ClockSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void timed(int* out, long long* cycles) {\n"
      "  long long start = clock64();\n"
      "  out[threadIdx.x] = threadIdx.x * 2;\n"
      "  cycles[threadIdx.x] = clock64() - start;\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string AssertSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void checked(int* data, int n) {\n"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  assert(i < n);\n"
      "  data[i] = i;\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string AtomicIntrinsicsSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void testAtomics(unsigned int* data) {\n"
      "  atomicInc(&data[0], 17u);\n"
      "  atomicDec(&data[1], 137u);\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string VoteSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void vote(int* in, int* out) {\n"
      "  out[threadIdx.x] = __all(in[threadIdx.x] > 0) +\n"
      "                     __any(in[threadIdx.x] > 8);\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string ShflSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void stencil_shfl(float* d) {\n"
      "  float v = d[threadIdx.x];\n"
      "  d[threadIdx.x] = v + __shfl_down(v, 1) + __shfl_up(v, 1);\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string LibSource(const std::string& app, const std::string& lib) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void postprocess(float* d, int n) {\n"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  if (i < n) d[i] *= 0.5f;\n"
      "}\n"
      "int main() {\n"
      "  /* uses %s */\n"
      "  %s;\n"
      "  return 0;\n"
      "}\n",
      app.c_str(), lib.c_str(), lib.c_str());
}

std::string TemplateKernelSource(const std::string& app) {
  // Templated *kernels* (not just device helpers) cannot be expressed in
  // OpenCL 1.2 and the host cannot name a specialization to launch.
  return StrFormat(
      "/* %s */\n"
      "template <class T>\n"
      "__global__ void process(T* data, T v) {\n"
      "  data[threadIdx.x] = data[threadIdx.x] + v;\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string DeviceClassSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "class Filter {\n"
      " public:\n"
      "  __device__ float apply(float v) { return v * 0.5f; }\n"
      "};\n"
      "__global__ void run(float* d) {\n"
      "  Filter f;\n"
      "  d[threadIdx.x] = f.apply(d[threadIdx.x]);\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string FunctionPointerSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__device__ float op_add(float a, float b) { return a + b; }\n"
      "__device__ float apply(float (*fn)(float, float), float a,\n"
      "                       float b) {\n"
      "  return fn(a, b);\n"
      "}\n"
      "__global__ void run(float* d) {\n"
      "  d[threadIdx.x] = apply(op_add, d[threadIdx.x], 1.0f);\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string PrintfSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void talky(int* d) {\n"
      "  printf(\"thread %%d sees %%d\\n\", threadIdx.x, d[threadIdx.x]);\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string NewDeleteSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void alloc_kernel(int* out) {\n"
      "  /* device-side allocation */\n"
      "  int* p = new int[4];\n"
      "  p[0] = threadIdx.x;\n"
      "  out[threadIdx.x] = p[0];\n"
      "  delete p;\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string GlSource(const std::string& app, bool with_cpp = false) {
  std::string cpp_part =
      with_cpp ? "class Body { public: __device__ float m() { return 1.0f; }"
                 " };\n"
               : "";
  return StrFormat(
      "/* %s */\n"
      "%s"
      "__global__ void render(float* vbo, int n) {\n"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  if (i < n) vbo[i] += 0.1f;\n"
      "}\n"
      "int main() {\n"
      "  glutInit(0, 0);\n"
      "  unsigned int vbo = 0;\n"
      "  glBindBuffer(0x8892, vbo);\n"
      "  cudaGraphicsGLRegisterBuffer(0, vbo, 0);\n"
      "  glDrawArrays(0, 0, 0);\n"
      "  return 0;\n"
      "}\n",
      app.c_str(), cpp_part.c_str());
}

std::string PtxSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "int main() {\n"
      "  CUmodule module;\n"
      "  cuModuleLoad(&module, \"kernel.ptx\");\n"
      "  return 0;\n"
      "}\n",
      app.c_str());
}

std::string InlinePtxSource(const std::string& app) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void laneid(unsigned int* out) {\n"
      "  unsigned int lane;\n"
      "  /* asm volatile(\"mov.u32 %%0, %%laneid;\" : \"=r\"(lane)); */\n"
      "  asm volatile(\"mov.u32 ...\");\n"
      "  out[threadIdx.x] = lane;\n"
      "}\n"
      "int main() { return 0; }\n",
      app.c_str());
}

std::string UvaSource(const std::string& app, const std::string& api) {
  return StrFormat(
      "/* %s */\n"
      "__global__ void touch(float* p, int n) {\n"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  if (i < n) p[i] += 1.0f;\n"
      "}\n"
      "int main() {\n"
      "  void* host;\n"
      "  %s;\n"
      "  return 0;\n"
      "}\n",
      app.c_str(), api.c_str());
}

std::vector<CatalogEntry> BuildCatalog() {
  std::vector<CatalogEntry> out;
  auto add = [&](std::string name, std::vector<FailureCategory> cats,
                 std::string src) {
    out.push_back({std::move(name), std::move(cats), std::move(src)});
  };

  // ---- No corresponding functions (Table 3 row 1) ----
  add("clock", {kNoFn}, ClockSource("clock"));
  add("concurrentKernels", {kNoFn}, ClockSource("concurrentKernels"));
  add("simpleAssert", {kNoFn}, AssertSource("simpleAssert"));
  add("simpleAtomicIntrinsics", {kNoFn},
      AtomicIntrinsicsSource("simpleAtomicIntrinsics"));
  add("simpleVoteIntrinsics", {kNoFn}, VoteSource("simpleVoteIntrinsics"));
  add("FDTD3d", {kNoFn}, ShflSource("FDTD3d"));

  // ---- Unsupported libraries (row 2) ----
  add("convolutionFFT2D", {kLibs},
      LibSource("convolutionFFT2D", "cufftExecC2C(plan, 0, 0, 1)"));
  add("lineOfSight", {kLibs},
      LibSource("lineOfSight", "thrust::inclusive_scan(h.begin(), h.end(), "
                               "h.begin())"));
  add("marchingCubes", {kLibs},
      LibSource("marchingCubes", "thrust::exclusive_scan(v.begin(), "
                                 "v.end(), v.begin())"));
  add("particles", {kLibs, kGl}, [] {
        // particles fails for two reasons (§6.3): libraries AND OpenGL.
        std::string s = GlSource("particles");
        return ReplaceAll(s, "int main() {",
                          "int main() {\n  thrust::sort_by_key(k.begin(), "
                          "k.end(), v.begin());");
      }());
  add("radixSortThrust", {kLibs},
      LibSource("radixSortThrust", "thrust::sort(keys.begin(), keys.end())"));

  // ---- Unsupported language extensions (row 3) ----
  add("alignedTypes", {kLang}, TemplateKernelSource("alignedTypes"));
  add("convolutionTexture", {kLang},
      TemplateKernelSource("convolutionTexture"));
  add("dct8x8", {kLang}, DeviceClassSource("dct8x8"));
  add("dxtc", {kLang}, DeviceClassSource("dxtc"));
  add("eigenvalues", {kLang}, TemplateKernelSource("eigenvalues"));
  add("Interval", {kLang}, DeviceClassSource("Interval"));
  add("mergeSort", {kLang}, TemplateKernelSource("mergeSort"));
  add("MonteCarlo", {kLang}, DeviceClassSource("MonteCarlo"));
  add("MonteCarloMultiGPU", {kLang},
      DeviceClassSource("MonteCarloMultiGPU"));
  add("FunctionPointers", {kLang},
      FunctionPointerSource("FunctionPointers"));
  add("transpose", {kLang}, TemplateKernelSource("transpose"));
  add("newdelete", {kLang}, NewDeleteSource("newdelete"));
  add("reduction", {kLang}, TemplateKernelSource("reduction"));
  add("simplePrintf", {kLang}, PrintfSource("simplePrintf"));
  add("simpleTemplates", {kLang}, TemplateKernelSource("simpleTemplates"));
  add("threadFenceReduction", {kLang},
      TemplateKernelSource("threadFenceReduction"));
  add("HSOpticalFlow", {kLang}, TemplateKernelSource("HSOpticalFlow"));
  add("simpleCubemapTexture", {kLang},
      DeviceClassSource("simpleCubemapTexture"));

  // ---- OpenGL binding (row 4) ----
  for (const char* app :
       {"bilateralFilter", "boxFilter", "fluidsGL", "imageDenoising",
        "oceanFFT", "postProcessGL", "recursiveGaussian", "simpleGL",
        "simpleTexture3D", "SobelFilter", "bicubicTexture", "volumeRender",
        "volumeFiltering"}) {
    add(app, {kGl}, GlSource(app));
  }
  // Mandelbrot/nbody/smokeParticles fail for two reasons: OpenGL + C++
  // device features (§6.3).
  add("Mandelbrot", {kLang, kGl}, GlSource("Mandelbrot", true));
  add("nbody", {kLang, kGl}, GlSource("nbody", true));
  add("smokeParticles", {kLang, kGl}, GlSource("smokeParticles", true));

  // ---- Use of PTX (row 5) ----
  add("matrixMulDrv", {kPtx}, PtxSource("matrixMulDrv"));
  add("inlinePTX", {kPtx}, InlinePtxSource("inlinePTX"));
  add("ptxjit", {kPtx}, PtxSource("ptxjit"));
  add("matrixMulDynlinkJIT", {kPtx}, PtxSource("matrixMulDynlinkJIT"));
  add("simpleTextureDrv", {kPtx}, PtxSource("simpleTextureDrv"));
  add("threadMigration", {kPtx}, PtxSource("threadMigration"));
  add("vectorAddDrv", {kPtx}, PtxSource("vectorAddDrv"));

  // ---- Use of unified virtual address space (row 6) ----
  add("simpleMultiCopy", {kUva},
      UvaSource("simpleMultiCopy", "cudaHostAlloc(&host, 1024, 0)"));
  add("simpleP2P", {kUva},
      UvaSource("simpleP2P", "cudaDeviceEnablePeerAccess(1, 0)"));
  add("simpleStreams", {kUva},
      UvaSource("simpleStreams", "cudaHostRegister(host, 1024, 0)"));
  add("simpleZeroCopy", {kUva},
      UvaSource("simpleZeroCopy",
                "cudaHostGetDevicePointer(&host, host, 0)"));
  return out;
}

}  // namespace

const std::vector<CatalogEntry>& FailureCatalog() {
  static const std::vector<CatalogEntry>* catalog =
      new std::vector<CatalogEntry>(BuildCatalog());
  return *catalog;
}

int ToolkitTranslatableCount() { return 25; }  // paper: 25 of 81
int ToolkitTotalCount() { return 81; }

}  // namespace bridgecl::apps
