// The paper's Table 3 corpus: the 56 NVIDIA CUDA Toolkit 4.2 samples whose
// CUDA→OpenCL translation fails, each represented by a compact CUDA source
// exhibiting exactly the blocking feature(s) the paper attributes to it.
// The classifier (translator/classifier.h) detects the features from the
// source; nothing here is a hard-coded verdict.
#pragma once

#include <string>
#include <vector>

#include "translator/classifier.h"

namespace bridgecl::apps {

struct CatalogEntry {
  std::string name;
  /// The paper's Table 3 categorization for this sample.
  std::vector<translator::FailureCategory> expected_categories;
  /// CUDA source exhibiting the blocking feature(s).
  std::string source;
};

/// All 56 failing samples, in Table 3 order.
const std::vector<CatalogEntry>& FailureCatalog();

/// The translatable Toolkit samples (the paper translated 25 of 81; our
/// ToolkitApps() covers a representative subset). Used by the Table 3
/// bench to report totals.
int ToolkitTranslatableCount();
int ToolkitTotalCount();

}  // namespace bridgecl::apps
