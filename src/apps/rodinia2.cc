// Rodinia 3.0-style applications (part 2): myocyte, nw, particlefilter,
// pathfinder, srad, streamcluster, hybridsort, plus the seven applications
// whose CUDA versions the paper could not translate to OpenCL (Fig 8a).
#include <cmath>
#include <numeric>

#include "apps/dual.h"

namespace bridgecl::apps {
namespace {

using simgpu::Dim3;

// ===========================================================================
// myocyte: math-heavy ODE integration step per cell.
// ===========================================================================
constexpr char kMyocyteCl[] = R"(
__kernel void myocyte_step(__global float* state, __global float* out,
                           int n, float dt) {
  int i = get_global_id(0);
  if (i >= n) return;
  float y = state[i];
  float k1 = -0.5f * y + exp(-y * y) + sin(0.1f * y);
  float k2 = -0.5f * (y + 0.5f * dt * k1) + exp(-(y + 0.5f * dt * k1) *
             (y + 0.5f * dt * k1)) + sin(0.1f * (y + 0.5f * dt * k1));
  out[i] = y + dt * k2;
}
)";

constexpr char kMyocyteCu[] = R"(
__global__ void myocyte_step(float* state, float* out, int n, float dt) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  float y = state[i];
  float k1 = -0.5f * y + expf(-y * y) + sinf(0.1f * y);
  float k2 = -0.5f * (y + 0.5f * dt * k1) + expf(-(y + 0.5f * dt * k1) *
             (y + 0.5f * dt * k1)) + sinf(0.1f * (y + 0.5f * dt * k1));
  out[i] = y + dt * k2;
}
)";

Status MyocyteDriver(DualDev& dev, double* checksum) {
  const int n = 512;
  InputGen gen(909);
  auto state = gen.Floats(n, -1, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_s, dev.Upload(state));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_o, dev.Alloc(n * 4));
  for (int step = 0; step < 4; ++step) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "myocyte_step", Dim3(n / 64), Dim3(64),
        {dev.BufArg(d_s), dev.BufArg(d_o), Arg::I32(n), Arg::F32(0.05f)}));
    std::swap(d_s, d_o);
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<float>(d_s, n));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// nw: Needleman-Wunsch anti-diagonal dynamic programming.
// ===========================================================================
constexpr char kNwCl[] = R"(
__kernel void nw_diagonal(__global int* score, __global int* ref, int size,
                          int diag, int penalty) {
  int k = get_global_id(0);
  int i = diag - k;
  int j = k;
  if (i < 1 || i >= size || j < 1 || j >= size) return;
  int up = score[(i - 1) * size + j] - penalty;
  int left = score[i * size + (j - 1)] - penalty;
  int corner = score[(i - 1) * size + (j - 1)] + ref[i * size + j];
  int best = up > left ? up : left;
  score[i * size + j] = best > corner ? best : corner;
}
)";

constexpr char kNwCu[] = R"(
__global__ void nw_diagonal(int* score, int* ref, int size, int diag,
                            int penalty) {
  int k = blockIdx.x * blockDim.x + threadIdx.x;
  int i = diag - k;
  int j = k;
  if (i < 1 || i >= size || j < 1 || j >= size) return;
  int up = score[(i - 1) * size + j] - penalty;
  int left = score[i * size + (j - 1)] - penalty;
  int corner = score[(i - 1) * size + (j - 1)] + ref[i * size + j];
  int best = up > left ? up : left;
  score[i * size + j] = best > corner ? best : corner;
}
)";

Status NwDriver(DualDev& dev, double* checksum) {
  const int size = 48;
  InputGen gen(1010);
  std::vector<int> score(size * size, 0), ref(size * size);
  for (int i = 0; i < size; ++i) {
    score[i] = -i;
    score[i * size] = -i;
  }
  for (auto& v : ref) v = gen.NextInt(-4, 5);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_score, dev.Upload(score));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_ref, dev.Upload(ref));
  for (int diag = 2; diag < 2 * size - 1; ++diag) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "nw_diagonal", Dim3((size + 63) / 64), Dim3(64),
        {dev.BufArg(d_score), dev.BufArg(d_ref), Arg::I32(size),
         Arg::I32(diag), Arg::I32(2)}));
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out,
                            dev.Download<int>(d_score, size * size));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// particlefilter: likelihood weights + normalization + resampling search.
// ===========================================================================
constexpr char kParticleCl[] = R"(
__kernel void likelihood(__global float* particles, __global float* weights,
                         float observed, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float diff = particles[i] - observed;
  weights[i] = exp(-0.5f * diff * diff);
}
__kernel void normalize_weights(__global float* weights,
                                __global float* total, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  weights[i] = weights[i] / *total;
}
__kernel void resample(__global float* cdf, __global float* particles,
                       __global float* resampled, float u0, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float u = u0 + (float)i / (float)n;
  int idx = n - 1;
  for (int j = 0; j < n; j++) {
    if (cdf[j] >= u) {
      idx = j;
      break;
    }
  }
  resampled[i] = particles[idx];
}
)";

constexpr char kParticleCu[] = R"(
__global__ void likelihood(float* particles, float* weights, float observed,
                           int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  float diff = particles[i] - observed;
  weights[i] = expf(-0.5f * diff * diff);
}
__global__ void normalize_weights(float* weights, float* total, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  weights[i] = weights[i] / *total;
}
__global__ void resample(float* cdf, float* particles, float* resampled,
                         float u0, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  float u = u0 + (float)i / (float)n;
  int idx = n - 1;
  for (int j = 0; j < n; j++) {
    if (cdf[j] >= u) {
      idx = j;
      break;
    }
  }
  resampled[i] = particles[idx];
}
)";

Status ParticleDriver(DualDev& dev, double* checksum) {
  const int n = 256;
  InputGen gen(1111);
  auto particles = gen.Floats(n, -3, 3);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_p, dev.Upload(particles));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_w, dev.Alloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(
      dev.Launch("likelihood", Dim3(n / 64), Dim3(64),
                 {dev.BufArg(d_p), dev.BufArg(d_w), Arg::F32(0.7f),
                  Arg::I32(n)}));
  // Host-side reduce + prefix (as the original does between kernels).
  BRIDGECL_ASSIGN_OR_RETURN(auto w, dev.Download<float>(d_w, n));
  float total = std::accumulate(w.begin(), w.end(), 0.0f);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_total,
                            dev.Upload(std::vector<float>{total}));
  BRIDGECL_RETURN_IF_ERROR(
      dev.Launch("normalize_weights", Dim3(n / 64), Dim3(64),
                 {dev.BufArg(d_w), dev.BufArg(d_total), Arg::I32(n)}));
  BRIDGECL_ASSIGN_OR_RETURN(w, dev.Download<float>(d_w, n));
  std::vector<float> cdf(n);
  float acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += w[i];
    cdf[i] = acc;
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto d_cdf, dev.Upload(cdf));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_out, dev.Alloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "resample", Dim3(n / 64), Dim3(64),
      {dev.BufArg(d_cdf), dev.BufArg(d_p), dev.BufArg(d_out),
       Arg::F32(1.0f / (2 * n)), Arg::I32(n)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<float>(d_out, n));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// pathfinder: row-stepping dynamic programming with a shared tile.
// ===========================================================================
constexpr char kPathfinderCl[] = R"(
__kernel void dynproc(__global int* wall, __global int* src,
                      __global int* dst, int cols, int row) {
  __local int prev[64];
  int tx = get_local_id(0);
  int x = get_global_id(0);
  prev[tx] = src[x];
  barrier(CLK_LOCAL_MEM_FENCE);
  int left = tx > 0 ? prev[tx - 1] : (x > 0 ? src[x - 1] : prev[tx]);
  int right = tx < 63 ? prev[tx + 1]
                      : (x < cols - 1 ? src[x + 1] : prev[tx]);
  int best = prev[tx];
  if (left < best) best = left;
  if (right < best) best = right;
  dst[x] = wall[row * cols + x] + best;
}
)";

constexpr char kPathfinderCu[] = R"(
__global__ void dynproc(int* wall, int* src, int* dst, int cols, int row) {
  __shared__ int prev[64];
  int tx = threadIdx.x;
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  prev[tx] = src[x];
  __syncthreads();
  int left = tx > 0 ? prev[tx - 1] : (x > 0 ? src[x - 1] : prev[tx]);
  int right = tx < 63 ? prev[tx + 1]
                      : (x < cols - 1 ? src[x + 1] : prev[tx]);
  int best = prev[tx];
  if (left < best) best = left;
  if (right < best) best = right;
  dst[x] = wall[row * cols + x] + best;
}
)";

Status PathfinderDriver(DualDev& dev, double* checksum) {
  const int cols = 256, rows = 8;
  InputGen gen(1212);
  auto wall = gen.Ints(cols * rows, 0, 10);
  std::vector<int> row0(wall.begin(), wall.begin() + cols);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_wall, dev.Upload(wall));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_src, dev.Upload(row0));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_dst, dev.Alloc(cols * 4));
  for (int row = 1; row < rows; ++row) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "dynproc", Dim3(cols / 64), Dim3(64),
        {dev.BufArg(d_wall), dev.BufArg(d_src), dev.BufArg(d_dst),
         Arg::I32(cols), Arg::I32(row)}));
    std::swap(d_src, d_dst);
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<int>(d_src, cols));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// srad: speckle-reducing anisotropic diffusion (two kernels).
// ===========================================================================
constexpr char kSradCl[] = R"(
__kernel void srad1(__global float* img, __global float* coef, int size,
                    float q0) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= size || y >= size) return;
  float c = img[y * size + x];
  float n = y > 0 ? img[(y - 1) * size + x] : c;
  float s = y < size - 1 ? img[(y + 1) * size + x] : c;
  float w = x > 0 ? img[y * size + x - 1] : c;
  float e = x < size - 1 ? img[y * size + x + 1] : c;
  float g2 = ((n - c) * (n - c) + (s - c) * (s - c) + (w - c) * (w - c) +
              (e - c) * (e - c)) / (c * c + 0.0001f);
  float l = (n + s + w + e - 4.0f * c) / (c + 0.0001f);
  float num = 0.5f * g2 - 0.0625f * l * l;
  float den = 1.0f + 0.25f * l;
  float q = num / (den * den + 0.0001f);
  coef[y * size + x] = 1.0f / (1.0f + (q - q0) / (q0 * (1.0f + q0)));
}
__kernel void srad2(__global float* img, __global float* coef, int size,
                    float lambda) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= size || y >= size) return;
  float cc = coef[y * size + x];
  float cn = y > 0 ? coef[(y - 1) * size + x] : cc;
  float cw = x > 0 ? coef[y * size + x - 1] : cc;
  float c = img[y * size + x];
  float n = y > 0 ? img[(y - 1) * size + x] : c;
  float s = y < size - 1 ? img[(y + 1) * size + x] : c;
  float w = x > 0 ? img[y * size + x - 1] : c;
  float e = x < size - 1 ? img[y * size + x + 1] : c;
  float d = cn * (n - c) + cc * (s - c) + cw * (w - c) + cc * (e - c);
  img[y * size + x] = c + 0.25f * lambda * d;
}
)";

constexpr char kSradCu[] = R"(
__global__ void srad1(float* img, float* coef, int size, float q0) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x >= size || y >= size) return;
  float c = img[y * size + x];
  float n = y > 0 ? img[(y - 1) * size + x] : c;
  float s = y < size - 1 ? img[(y + 1) * size + x] : c;
  float w = x > 0 ? img[y * size + x - 1] : c;
  float e = x < size - 1 ? img[y * size + x + 1] : c;
  float g2 = ((n - c) * (n - c) + (s - c) * (s - c) + (w - c) * (w - c) +
              (e - c) * (e - c)) / (c * c + 0.0001f);
  float l = (n + s + w + e - 4.0f * c) / (c + 0.0001f);
  float num = 0.5f * g2 - 0.0625f * l * l;
  float den = 1.0f + 0.25f * l;
  float q = num / (den * den + 0.0001f);
  coef[y * size + x] = 1.0f / (1.0f + (q - q0) / (q0 * (1.0f + q0)));
}
__global__ void srad2(float* img, float* coef, int size, float lambda) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x >= size || y >= size) return;
  float cc = coef[y * size + x];
  float cn = y > 0 ? coef[(y - 1) * size + x] : cc;
  float cw = x > 0 ? coef[y * size + x - 1] : cc;
  float c = img[y * size + x];
  float n = y > 0 ? img[(y - 1) * size + x] : c;
  float s = y < size - 1 ? img[(y + 1) * size + x] : c;
  float w = x > 0 ? img[y * size + x - 1] : c;
  float e = x < size - 1 ? img[y * size + x + 1] : c;
  float d = cn * (n - c) + cc * (s - c) + cw * (w - c) + cc * (e - c);
  img[y * size + x] = c + 0.25f * lambda * d;
}
)";

Status SradDriver(DualDev& dev, double* checksum) {
  const int size = 32;
  InputGen gen(1313);
  auto img = gen.Floats(size * size, 0.2f, 1.0f);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_img, dev.Upload(img));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_coef, dev.Alloc(size * size * 4));
  for (int iter = 0; iter < 2; ++iter) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "srad1", Dim3(size / 16, size / 16), Dim3(16, 16),
        {dev.BufArg(d_img), dev.BufArg(d_coef), Arg::I32(size),
         Arg::F32(0.5f)}));
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "srad2", Dim3(size / 16, size / 16), Dim3(16, 16),
        {dev.BufArg(d_img), dev.BufArg(d_coef), Arg::I32(size),
         Arg::F32(0.5f)}));
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out,
                            dev.Download<float>(d_img, size * size));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// streamcluster: distance/assignment cost computation.
// ===========================================================================
constexpr char kStreamclusterCl[] = R"(
__kernel void pgain(__global float* points, __global float* centers,
                    __global float* cost, int n, int k, int dims) {
  int i = get_global_id(0);
  if (i >= n) return;
  float best = 1e30f;
  for (int c = 0; c < k; c++) {
    float dist = 0.0f;
    for (int d = 0; d < dims; d++) {
      float diff = points[i * dims + d] - centers[c * dims + d];
      dist += diff * diff;
    }
    if (dist < best) best = dist;
  }
  cost[i] = best;
}
)";

constexpr char kStreamclusterCu[] = R"(
__global__ void pgain(float* points, float* centers, float* cost, int n,
                      int k, int dims) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  float best = 1e30f;
  for (int c = 0; c < k; c++) {
    float dist = 0.0f;
    for (int d = 0; d < dims; d++) {
      float diff = points[i * dims + d] - centers[c * dims + d];
      dist += diff * diff;
    }
    if (dist < best) best = dist;
  }
  cost[i] = best;
}
)";

Status StreamclusterDriver(DualDev& dev, double* checksum) {
  const int n = 256, k = 8, dims = 8;
  InputGen gen(1414);
  auto points = gen.Floats(n * dims, 0, 1);
  auto centers = gen.Floats(k * dims, 0, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_p, dev.Upload(points));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_c, dev.Upload(centers));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_cost, dev.Alloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "pgain", Dim3(n / 64), Dim3(64),
      {dev.BufArg(d_p), dev.BufArg(d_c), dev.BufArg(d_cost), Arg::I32(n),
       Arg::I32(k), Arg::I32(dims)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<float>(d_cost, n));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// hybridsort: bucket sort. The CUDA and OpenCL versions of the original
// differ in implementation: the CUDA version needs fewer host↔device
// transfers, which is the ~27% gap in Fig 7(a)'s third bar. This app
// bypasses DualApp to model that asymmetry faithfully.
// ===========================================================================
constexpr char kHybridsortClSrc[] = R"(
__kernel void histo(__global int* keys, __global int* counts, int n,
                    int buckets) {
  int i = get_global_id(0);
  if (i >= n) return;
  atomic_add(&counts[keys[i] % buckets], 1);
}
__kernel void scatter(__global int* keys, __global int* offsets,
                      __global int* out, int n, int buckets) {
  int i = get_global_id(0);
  if (i >= n) return;
  int b = keys[i] % buckets;
  int pos = atomic_add(&offsets[b], 1);
  out[pos] = keys[i];
}
)";

constexpr char kHybridsortCuSrc[] = R"(
__global__ void histo(int* keys, int* counts, int n, int buckets) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  atomicAdd(&counts[keys[i] % buckets], 1);
}
__global__ void prefix(int* counts, int* offsets, int buckets) {
  if (threadIdx.x == 0) {
    int acc = 0;
    for (int b = 0; b < buckets; b++) {
      offsets[b] = acc;
      acc += counts[b];
    }
  }
}
__global__ void scatter(int* keys, int* offsets, int* out, int n,
                        int buckets) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  int b = keys[i] % buckets;
  int pos = atomicAdd(&offsets[b], 1);
  out[pos] = keys[i];
}
)";

class HybridsortApp final : public App {
 public:
  std::string name() const override { return "hybridsort"; }
  std::string suite() const override { return "rodinia"; }
  std::string OpenClSource() const override { return kHybridsortClSrc; }
  std::string CudaSource() const override { return kHybridsortCuSrc; }

  // OpenCL version: the prefix sum happens on the HOST — counts are read
  // back and offsets re-uploaded (two extra transfers per sort).
  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const int n = 1024, buckets = 16;
    InputGen gen(1515);
    auto keys = gen.Ints(n, 0, 1 << 20);
    ClRunner r(cl);
    BRIDGECL_RETURN_IF_ERROR(r.Build(kHybridsortClSrc));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_keys, r.Upload(keys));
    BRIDGECL_ASSIGN_OR_RETURN(
        auto d_counts, r.Upload(std::vector<int>(buckets, 0)));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_out, r.Alloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "histo", Dim3(n), Dim3(64),
        {Arg::Buf(d_keys), Arg::Buf(d_counts), Arg::I32(n),
         Arg::I32(buckets)}));
    // The original OpenCL hybridsort splits the sort between the CPU and
    // the GPU: the keys round-trip through the host between phases. The
    // CUDA version keeps everything resident (the ~27% gap of Fig 7a).
    BRIDGECL_ASSIGN_OR_RETURN(auto host_keys, r.Download<int>(d_keys, n));
    BRIDGECL_RETURN_IF_ERROR(
        cl.EnqueueWriteBuffer(d_keys, 0, n * 4, host_keys.data()));
    // Extra transfer: counts to host for the prefix sum.
    BRIDGECL_ASSIGN_OR_RETURN(auto counts, r.Download<int>(d_counts,
                                                           buckets));
    std::vector<int> offsets(buckets);
    int acc = 0;
    for (int b = 0; b < buckets; ++b) {
      offsets[b] = acc;
      acc += counts[b];
    }
    // Extra transfer #2: offsets back to the device.
    BRIDGECL_ASSIGN_OR_RETURN(auto d_offsets, r.Upload(offsets));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "scatter", Dim3(n), Dim3(64),
        {Arg::Buf(d_keys), Arg::Buf(d_offsets), Arg::Buf(d_out),
         Arg::I32(n), Arg::I32(buckets)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<int>(d_out, n));
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += double(out[i] % 97) * ((i % 5) + 1);
    *checksum = sum;
    return OkStatus();
  }

  // CUDA version: the prefix sum is a tiny kernel — no extra transfers.
  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    const int n = 1024, buckets = 16;
    InputGen gen(1515);
    auto keys = gen.Ints(n, 0, 1 << 20);
    CudaRunner r(cu);
    BRIDGECL_RETURN_IF_ERROR(r.Build(kHybridsortCuSrc));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_keys, r.Upload(keys));
    BRIDGECL_ASSIGN_OR_RETURN(
        auto d_counts, r.Upload(std::vector<int>(buckets, 0)));
    BRIDGECL_ASSIGN_OR_RETURN(
        auto d_offsets, r.Upload(std::vector<int>(buckets, 0)));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_out, r.Alloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "histo", Dim3(n / 64), Dim3(64), 0,
        {Arg::Ptr(d_keys), Arg::Ptr(d_counts), Arg::I32(n),
         Arg::I32(buckets)}));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "prefix", Dim3(1), Dim3(1), 0,
        {Arg::Ptr(d_counts), Arg::Ptr(d_offsets), Arg::I32(buckets)}));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "scatter", Dim3(n / 64), Dim3(64), 0,
        {Arg::Ptr(d_keys), Arg::Ptr(d_offsets), Arg::Ptr(d_out),
         Arg::I32(n), Arg::I32(buckets)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<int>(d_out, n));
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += double(out[i] % 97) * ((i % 5) + 1);
    *checksum = sum;
    return OkStatus();
  }
};

// ===========================================================================
// Untranslatable Rodinia stand-ins (Fig 8a's seven failures). Each is a
// CUDA-only app whose blocking feature matches the paper's reason.
// ===========================================================================

/// heartwall: the CUDA version passes a struct containing device pointers
/// to the kernel (untranslatable); Rodinia's own OpenCL port passes the
/// pointers as separate kernel arguments instead.
class HeartwallApp final : public App {
 public:
  std::string name() const override { return "heartwall"; }
  std::string suite() const override { return "rodinia"; }
  std::string OpenClSource() const override {
    return R"(
__kernel void track(__global float* data, __global float* result, int n) {
  int i = get_global_id(0);
  if (i < n) result[i] = data[i] * 0.5f + 1.0f;
}
)";
  }
  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const int n = 256;
    InputGen gen(1616);
    auto data = gen.Floats(n, 0, 1);
    ClRunner r(cl);
    BRIDGECL_RETURN_IF_ERROR(r.Build(OpenClSource()));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_data, r.Upload(data));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_res, r.Alloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "track", Dim3(n), Dim3(64),
        {Arg::Buf(d_data), Arg::Buf(d_res), Arg::I32(n)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<float>(d_res, n));
    *checksum = Checksum(out);
    return OkStatus();
  }
  std::string CudaSource() const override {
    return R"(
struct Frame { float* data; float* result; int n; };
__global__ void track(struct Frame f) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < f.n) f.result[i] = f.data[i] * 0.5f + 1.0f;
}
)";
  }
  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    struct Frame {
      uint64_t data;
      uint64_t result;
      int n;
      int pad;
    };
    const int n = 256;
    InputGen gen(1616);
    auto data = gen.Floats(n, 0, 1);
    CudaRunner r(cu);
    BRIDGECL_RETURN_IF_ERROR(r.Build(CudaSource()));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_data, r.Upload(data));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_res, r.Alloc(n * 4));
    Frame f{reinterpret_cast<uint64_t>(d_data),
            reinterpret_cast<uint64_t>(d_res), n, 0};
    std::vector<mcuda::LaunchArg> args = {
        mcuda::LaunchArg::Value<Frame>(f)};
    BRIDGECL_RETURN_IF_ERROR(
        cu.LaunchKernel("track", Dim3(n / 64), Dim3(64), 0, args));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<float>(d_res, n));
    *checksum = Checksum(out);
    return OkStatus();
  }
};

/// nn / mummergpu: call cudaMemGetInfo, which cannot exist in OpenCL.
class MemInfoApp final : public App {
 public:
  MemInfoApp(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string suite() const override { return "rodinia"; }
  std::string OpenClSource() const override {
    return R"(
__kernel void nearest(__global float* pts, __global float* dist, float qx,
                      int n) {
  int i = get_global_id(0);
  if (i < n) {
    float d = pts[i] - qx;
    dist[i] = d * d;
  }
}
)";
  }
  // Rodinia's OpenCL port has no free-memory query (none exists in
  // OpenCL); it sizes the working set statically.
  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const int n = 256;
    InputGen gen(1717);
    auto pts = gen.Floats(n, 0, 100);
    ClRunner r(cl);
    BRIDGECL_RETURN_IF_ERROR(r.Build(OpenClSource()));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_pts, r.Upload(pts));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_dist, r.Alloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "nearest", Dim3(n), Dim3(64),
        {Arg::Buf(d_pts), Arg::Buf(d_dist), Arg::F32(42.0f), Arg::I32(n)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<float>(d_dist, n));
    *checksum = Checksum(out);
    return OkStatus();
  }
  std::string CudaSource() const override {
    return R"(
__global__ void nearest(float* pts, float* dist, float qx, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    float d = pts[i] - qx;
    dist[i] = d * d;
  }
}
)";
  }
  std::string FullCudaSource() const override {
    return CudaSource() +
           "int main() {\n"
           "  size_t free_mem, total_mem;\n"
           "  cudaMemGetInfo(&free_mem, &total_mem);\n"
           "  /* ... sizes the working set from free_mem ... */\n"
           "  return 0;\n"
           "}\n";
  }
  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    const int n = 256;
    InputGen gen(1717);
    auto pts = gen.Floats(n, 0, 100);
    CudaRunner r(cu);
    BRIDGECL_RETURN_IF_ERROR(r.Build(CudaSource()));
    // The blocking feature: sizing working sets from free device memory.
    BRIDGECL_ASSIGN_OR_RETURN(auto meminfo, cu.MemGetInfo());
    (void)meminfo;
    BRIDGECL_ASSIGN_OR_RETURN(auto d_pts, r.Upload(pts));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_dist, r.Alloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "nearest", Dim3(n / 64), Dim3(64), 0,
        {Arg::Ptr(d_pts), Arg::Ptr(d_dist), Arg::F32(42.0f), Arg::I32(n)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<float>(d_dist, n));
    *checksum = Checksum(out);
    return OkStatus();
  }

 private:
  std::string name_;
};

/// dwt2d: uses a C++ class in device code.
class Dwt2dApp final : public App {
 public:
  std::string name() const override { return "dwt2d"; }
  std::string suite() const override { return "rodinia"; }
  std::string CudaSource() const override {
    // Device-side C++ class: our CUDA front end does not accept it either,
    // so this source exists only for classification (Table 3).
    return R"(
class Transform {
 public:
  __device__ float apply(float v) { return v * 0.7071f; }
};
__global__ void dwt(float* data, int n) {
  Transform t;
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) data[i] = t.apply(data[i]);
}
)";
  }
  std::string OpenClSource() const override {
    return R"(
__kernel void dwt(__global float* data, int n) {
  int i = get_global_id(0);
  if (i < n) data[i] = data[i] * 0.7071f;
}
)";
  }
  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const int n = 256;
    InputGen gen(1919);
    auto data = gen.Floats(n, -1, 1);
    ClRunner r(cl);
    BRIDGECL_RETURN_IF_ERROR(r.Build(OpenClSource()));
    BRIDGECL_ASSIGN_OR_RETURN(auto d, r.Upload(data));
    BRIDGECL_RETURN_IF_ERROR(
        r.Launch("dwt", Dim3(n), Dim3(64), {Arg::Buf(d), Arg::I32(n)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<float>(d, n));
    *checksum = Checksum(out);
    return OkStatus();
  }
  Status RunCuda(mcuda::CudaApi&, double*) override {
    return UnimplementedError(
        "dwt2d uses C++ classes in device code; the mini-CUDA front end "
        "(like the paper's translator) does not support them");
  }
};

/// kmeans / leukocyte / hybridsort-tex: 1D linear texture larger than
/// OpenCL's maximum 1D image width (§5).
class BigTextureApp final : public App {
 public:
  explicit BigTextureApp(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string suite() const override { return "rodinia"; }
  std::string CudaSource() const override {
    return R"(
texture<float, 1, cudaReadModeElementType> features;
__global__ void assign(float* out, int n, int stride) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = tex1Dfetch(features, i * stride);
}
)";
  }
  std::string OpenClSource() const override {
    return R"(
__kernel void assign(__global float* features, __global float* out, int n,
                     int stride) {
  int i = get_global_id(0);
  if (i < n) out[i] = features[i * stride];
}
)";
  }
  // Rodinia's OpenCL kmeans/leukocyte read the feature matrix from a
  // plain buffer — no 1D-image size limit applies.
  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const size_t tex_n = 100000;
    const int n = 256;
    ClRunner r(cl);
    BRIDGECL_RETURN_IF_ERROR(r.Build(OpenClSource()));
    InputGen gen(1818);
    auto data = gen.Floats(tex_n, 0, 1);
    BRIDGECL_ASSIGN_OR_RETURN(auto d_f, r.Upload(data));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_out, r.Alloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "assign", Dim3(n), Dim3(64),
        {Arg::Buf(d_f), Arg::Buf(d_out), Arg::I32(n),
         Arg::I32(static_cast<int>(tex_n / n))}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<float>(d_out, n));
    *checksum = Checksum(out);
    return OkStatus();
  }
  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    // 100K texels: fine for CUDA (limit 2^27), over OpenCL's 65536.
    const size_t tex_n = 100000;
    const int n = 256;
    CudaRunner r(cu);
    BRIDGECL_RETURN_IF_ERROR(r.Build(CudaSource()));
    InputGen gen(1818);
    auto data = gen.Floats(tex_n, 0, 1);
    BRIDGECL_ASSIGN_OR_RETURN(auto d_tex, r.Upload(data));
    mcuda::ChannelDesc desc;
    desc.elem = lang::ScalarKind::kFloat;
    desc.channels = 1;
    BRIDGECL_RETURN_IF_ERROR(
        cu.BindTexture("features", d_tex, tex_n * 4, desc));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_out, r.Alloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "assign", Dim3(n / 64), Dim3(64), 0,
        {Arg::Ptr(d_out), Arg::I32(n),
         Arg::I32(static_cast<int>(tex_n / n))}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<float>(d_out, n));
    *checksum = Checksum(out);
    return OkStatus();
  }

 private:
  std::string name_;
};

}  // namespace

void AppendRodiniaPart2(std::vector<AppPtr>* apps) {
  apps->push_back(std::make_unique<DualApp>("myocyte", "rodinia",
                                            kMyocyteCl, kMyocyteCu,
                                            MyocyteDriver));
  apps->push_back(std::make_unique<DualApp>("nw", "rodinia", kNwCl, kNwCu,
                                            NwDriver));
  apps->push_back(std::make_unique<DualApp>("particlefilter", "rodinia",
                                            kParticleCl, kParticleCu,
                                            ParticleDriver));
  apps->push_back(std::make_unique<DualApp>("pathfinder", "rodinia",
                                            kPathfinderCl, kPathfinderCu,
                                            PathfinderDriver));
  apps->push_back(std::make_unique<DualApp>("srad", "rodinia", kSradCl,
                                            kSradCu, SradDriver));
  apps->push_back(std::make_unique<DualApp>("streamcluster", "rodinia",
                                            kStreamclusterCl,
                                            kStreamclusterCu,
                                            StreamclusterDriver));
  apps->push_back(std::make_unique<HybridsortApp>());
}

std::vector<AppPtr> RodiniaUntranslatableApps() {
  std::vector<AppPtr> apps;
  apps.push_back(std::make_unique<HeartwallApp>());
  apps.push_back(std::make_unique<MemInfoApp>("nn"));
  apps.push_back(std::make_unique<MemInfoApp>("mummergpu"));
  apps.push_back(std::make_unique<Dwt2dApp>());
  apps.push_back(std::make_unique<BigTextureApp>("kmeans"));
  apps.push_back(std::make_unique<BigTextureApp>("leukocyte"));
  apps.push_back(std::make_unique<BigTextureApp>("hybridsort-tex"));
  return apps;
}

}  // namespace bridgecl::apps
