#include "apps/runners.h"

namespace bridgecl::apps {

Status ClRunner::Build(const std::string& source) {
  BRIDGECL_ASSIGN_OR_RETURN(program_, cl_.CreateProgramWithSource(source));
  BRIDGECL_RETURN_IF_ERROR(cl_.BuildProgram(program_));
  built_ = true;
  return OkStatus();
}

StatusOr<mocl::ClMem> ClRunner::Alloc(size_t bytes, mocl::MemFlags flags) {
  return cl_.CreateBuffer(flags, bytes, nullptr);
}

Status ClRunner::Launch(const std::string& kernel, simgpu::Dim3 gws,
                        simgpu::Dim3 lws, std::initializer_list<Arg> args) {
  if (!built_) return FailedPreconditionError("program not built");
  BRIDGECL_ASSIGN_OR_RETURN(mocl::ClKernel k,
                            cl_.CreateKernel(program_, kernel));
  int index = 0;
  for (const Arg& a : args) {
    switch (a.k) {
      case Arg::K::kClBuf:
        BRIDGECL_RETURN_IF_ERROR(
            cl_.SetKernelArg(k, index, sizeof(mocl::ClMem), &a.mem));
        break;
      case Arg::K::kLocal:
        BRIDGECL_RETURN_IF_ERROR(cl_.SetKernelArg(k, index, a.n, nullptr));
        break;
      case Arg::K::kI32:
        BRIDGECL_RETURN_IF_ERROR(
            cl_.SetKernelArg(k, index, sizeof(int32_t), &a.i));
        break;
      case Arg::K::kU32:
        BRIDGECL_RETURN_IF_ERROR(
            cl_.SetKernelArg(k, index, sizeof(uint32_t), &a.u));
        break;
      case Arg::K::kF32:
        BRIDGECL_RETURN_IF_ERROR(
            cl_.SetKernelArg(k, index, sizeof(float), &a.f));
        break;
      case Arg::K::kF64:
        BRIDGECL_RETURN_IF_ERROR(
            cl_.SetKernelArg(k, index, sizeof(double), &a.d));
        break;
      case Arg::K::kU64:
        BRIDGECL_RETURN_IF_ERROR(
            cl_.SetKernelArg(k, index, sizeof(uint64_t), &a.u64));
        break;
      case Arg::K::kCuPtr:
        return InvalidArgumentError("CUDA pointer arg in an OpenCL launch");
    }
    ++index;
  }
  size_t gws_a[3] = {gws.x, gws.y, gws.z};
  size_t lws_a[3] = {lws.x, lws.y, lws.z};
  return cl_.EnqueueNDRangeKernel(k, 3, gws_a, lws_a);
}

Status ClRunner::SetRegisters(const std::string& kernel, int regs) {
  return cl_.SetProgramKernelRegisters(program_, kernel, regs);
}

Status CudaRunner::Launch(const std::string& kernel, simgpu::Dim3 grid,
                          simgpu::Dim3 block, size_t shared_bytes,
                          std::initializer_list<Arg> args) {
  std::vector<mcuda::LaunchArg> largs;
  largs.reserve(args.size());
  for (const Arg& a : args) {
    switch (a.k) {
      case Arg::K::kCuPtr:
        largs.push_back(mcuda::LaunchArg::Ptr(a.ptr));
        break;
      case Arg::K::kI32:
        largs.push_back(mcuda::LaunchArg::Value<int32_t>(a.i));
        break;
      case Arg::K::kU32:
        largs.push_back(mcuda::LaunchArg::Value<uint32_t>(a.u));
        break;
      case Arg::K::kF32:
        largs.push_back(mcuda::LaunchArg::Value<float>(a.f));
        break;
      case Arg::K::kF64:
        largs.push_back(mcuda::LaunchArg::Value<double>(a.d));
        break;
      case Arg::K::kU64:
        largs.push_back(mcuda::LaunchArg::Value<uint64_t>(a.u64));
        break;
      case Arg::K::kClBuf:
      case Arg::K::kLocal:
        return InvalidArgumentError(
            "OpenCL-only argument kind in a CUDA launch");
    }
  }
  return cu_.LaunchKernel(kernel, grid, block, shared_bytes, largs);
}

double Checksum(const std::vector<float>& v) {
  double sum = 0;
  for (size_t i = 0; i < v.size(); ++i)
    sum += static_cast<double>(v[i]) * ((i % 7) + 1);
  return sum;
}

double Checksum(const std::vector<double>& v) {
  double sum = 0;
  for (size_t i = 0; i < v.size(); ++i) sum += v[i] * ((i % 7) + 1);
  return sum;
}

double Checksum(const std::vector<int>& v) {
  double sum = 0;
  for (size_t i = 0; i < v.size(); ++i)
    sum += static_cast<double>(v[i]) * ((i % 7) + 1);
  return sum;
}

double Checksum(const std::vector<unsigned>& v) {
  double sum = 0;
  for (size_t i = 0; i < v.size(); ++i)
    sum += static_cast<double>(v[i]) * ((i % 7) + 1);
  return sum;
}

}  // namespace bridgecl::apps
