// SNU NPB 1.0.3-style applications: CG, EP, FT, IS, LU, MG, SP. SNU NPB
// is OpenCL-only (the paper's Fig 7b evaluates the OpenCL→CUDA direction
// on it). FT keeps the original's double-precision data flowing through
// __local memory — the source of the 2-way bank conflicts in the 32-bit
// shared-memory mode that made the translated CUDA version ~1.75x faster
// (§6.2: "the resulting CUDA application takes only 57% of the execution
// time of the original OpenCL application").
#include <cmath>

#include "apps/dual.h"

namespace bridgecl::apps {
namespace {

using simgpu::Dim3;

// ===========================================================================
// CG: sparse matrix-vector product + dot products.
// ===========================================================================
constexpr char kCgCl[] = R"(
__kernel void spmv(__global int* rowstr, __global int* colidx,
                   __global double* a, __global double* p,
                   __global double* q, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  double sum = 0.0;
  for (int k = rowstr[i]; k < rowstr[i + 1]; k++) {
    sum += a[k] * p[colidx[k]];
  }
  q[i] = sum;
}
__kernel void axpy(__global double* x, __global double* y, double alpha,
                   int n) {
  int i = get_global_id(0);
  if (i < n) y[i] = y[i] + alpha * x[i];
}
)";

Status CgDriver(DualDev& dev, double* checksum) {
  const int n = 256, nz_per_row = 4;
  InputGen gen(2121);
  std::vector<int> rowstr(n + 1), colidx(n * nz_per_row);
  std::vector<double> a(n * nz_per_row), p(n);
  for (int i = 0; i <= n; ++i) rowstr[i] = i * nz_per_row;
  for (int i = 0; i < n * nz_per_row; ++i) {
    colidx[i] = gen.NextInt(0, n);
    a[i] = gen.NextFloat(-1, 1);
  }
  for (int i = 0; i < n; ++i) p[i] = gen.NextFloat(0, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_rowstr, dev.Upload(rowstr));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_colidx, dev.Upload(colidx));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_a, dev.Upload(a));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_p, dev.Upload(p));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_q, dev.Alloc(n * 8));
  for (int iter = 0; iter < 2; ++iter) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "spmv", Dim3(n / 64), Dim3(64),
        {dev.BufArg(d_rowstr), dev.BufArg(d_colidx), dev.BufArg(d_a),
         dev.BufArg(d_p), dev.BufArg(d_q), Arg::I32(n)}));
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "axpy", Dim3(n / 64), Dim3(64),
        {dev.BufArg(d_q), dev.BufArg(d_p), Arg::F64(0.5), Arg::I32(n)}));
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<double>(d_p, n));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// EP: embarrassingly parallel random-number tallies.
// ===========================================================================
constexpr char kEpCl[] = R"(
__kernel void ep(__global double* sums, __global int* counts, int pairs) {
  int i = get_global_id(0);
  uint seed = (uint)i * 2654435761u + 12345u;
  double sx = 0.0;
  double sy = 0.0;
  int hits = 0;
  for (int p = 0; p < pairs; p++) {
    seed = seed * 1664525u + 1013904223u;
    double x = (double)(seed >> 8) / 16777216.0 * 2.0 - 1.0;
    seed = seed * 1664525u + 1013904223u;
    double y = (double)(seed >> 8) / 16777216.0 * 2.0 - 1.0;
    double t = x * x + y * y;
    if (t <= 1.0) {
      double f = sqrt(-2.0 * log(t + 1e-12) / (t + 1e-12));
      sx += x * f;
      sy += y * f;
      hits++;
    }
  }
  sums[i * 2] = sx;
  sums[i * 2 + 1] = sy;
  counts[i] = hits;
}
)";

Status EpDriver(DualDev& dev, double* checksum) {
  const int n = 128, pairs = 32;
  BRIDGECL_ASSIGN_OR_RETURN(auto d_sums, dev.Alloc(n * 16));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_counts, dev.Alloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "ep", Dim3(n / 32), Dim3(32),
      {dev.BufArg(d_sums), dev.BufArg(d_counts), Arg::I32(pairs)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto sums, dev.Download<double>(d_sums, n * 2));
  BRIDGECL_ASSIGN_OR_RETURN(auto counts, dev.Download<int>(d_counts, n));
  *checksum = Checksum(sums) + Checksum(counts);
  return OkStatus();
}

// ===========================================================================
// FT: Fourier-transform butterflies staged through __local memory. The
// kernels move double2 complex elements in and out of local memory — the
// §6.2 bank-conflict pattern. Three kernels (cffts1/2/3) as the original.
// ===========================================================================
constexpr char kFtCl[] = R"(
__kernel void cffts1(__global double2* x, __global double2* y, int stages) {
  __local double2 tile[64];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = x[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 0; s < stages; s++) {
    int peer = l ^ (1 << (s % 6));
    double2 a = tile[l];
    double2 b = tile[peer];
    double2 r;
    r.x = a.x + b.x * 0.5;
    r.y = a.y - b.y * 0.5;
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[l] = r;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  y[g] = tile[l];
}
__kernel void cffts2(__global double2* x, __global double2* y, int stages) {
  __local double2 tile[64];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = x[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 0; s < stages; s++) {
    int peer = l ^ (1 << ((s + 1) % 6));
    double2 a = tile[l];
    double2 b = tile[peer];
    double2 r;
    r.x = a.x * 0.5 + b.x;
    r.y = a.y * 0.5 - b.y;
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[l] = r;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  y[g] = tile[l];
}
__kernel void cffts3(__global double2* x, __global double2* y, int stages) {
  __local double2 tile[64];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = x[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 0; s < stages; s++) {
    int peer = l ^ (1 << ((s + 2) % 6));
    double2 a = tile[l];
    double2 b = tile[peer];
    double2 r;
    r.x = a.x - b.x * 0.25;
    r.y = a.y + b.y * 0.25;
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[l] = r;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  y[g] = tile[l];
}
)";

Status FtDriver(DualDev& dev, double* checksum) {
  const int n = 1024;  // complex elements
  const int stages = 24;
  InputGen gen(2323);
  std::vector<double> init(n * 2);
  for (auto& v : init) v = gen.NextFloat(-1, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_x, dev.Upload(init));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_y, dev.Alloc(n * 16));
  const char* kernels[3] = {"cffts1", "cffts2", "cffts3"};
  for (int pass = 0; pass < 3; ++pass) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        kernels[pass], Dim3(n / 64), Dim3(64),
        {dev.BufArg(d_x), dev.BufArg(d_y), Arg::I32(stages)}));
    std::swap(d_x, d_y);
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<double>(d_x, n * 2));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// IS: integer bucket ranking with atomics.
// ===========================================================================
constexpr char kIsCl[] = R"(
__kernel void rank_count(__global int* keys, __global int* buckets, int n,
                         int nbuckets) {
  int i = get_global_id(0);
  if (i >= n) return;
  atomic_add(&buckets[keys[i] % nbuckets], 1);
}
__kernel void rank_assign(__global int* keys, __global int* offsets,
                          __global int* rank, int n, int nbuckets) {
  int i = get_global_id(0);
  if (i >= n) return;
  int b = keys[i] % nbuckets;
  rank[i] = atomic_add(&offsets[b], 1);
}
)";

Status IsDriver(DualDev& dev, double* checksum) {
  const int n = 1024, nbuckets = 32;
  InputGen gen(2424);
  auto keys = gen.Ints(n, 0, 1 << 16);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_keys, dev.Upload(keys));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_buckets,
                            dev.Upload(std::vector<int>(nbuckets, 0)));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "rank_count", Dim3(n / 64), Dim3(64),
      {dev.BufArg(d_keys), dev.BufArg(d_buckets), Arg::I32(n),
       Arg::I32(nbuckets)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto counts,
                            dev.Download<int>(d_buckets, nbuckets));
  std::vector<int> offsets(nbuckets);
  int acc = 0;
  for (int b = 0; b < nbuckets; ++b) {
    offsets[b] = acc;
    acc += counts[b];
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto d_offsets, dev.Upload(offsets));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_rank, dev.Alloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "rank_assign", Dim3(n / 64), Dim3(64),
      {dev.BufArg(d_keys), dev.BufArg(d_offsets), dev.BufArg(d_rank),
       Arg::I32(n), Arg::I32(nbuckets)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto rank, dev.Download<int>(d_rank, n));
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += double(rank[i] % 31) * ((i % 5) + 1);
  *checksum = sum;
  return OkStatus();
}

// ===========================================================================
// LU: SSOR-style sweep (forward relaxation step).
// ===========================================================================
constexpr char kLuCl[] = R"(
__kernel void ssor_sweep(__global double* u, __global double* rsd, int nx,
                         double omega) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  if (i >= nx || j >= nx) return;
  int idx = j * nx + i;
  double left = i > 0 ? u[idx - 1] : 0.0;
  double up = j > 0 ? u[idx - nx] : 0.0;
  rsd[idx] = (1.0 - omega) * u[idx] + omega * 0.25 * (left + up + 1.0);
}
)";

Status LuDriver(DualDev& dev, double* checksum) {
  const int nx = 32;
  InputGen gen(2525);
  std::vector<double> u(nx * nx);
  for (auto& v : u) v = gen.NextFloat(0, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_u, dev.Upload(u));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_rsd, dev.Alloc(nx * nx * 8));
  for (int sweep = 0; sweep < 3; ++sweep) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "ssor_sweep", Dim3(nx / 16, nx / 16), Dim3(16, 16),
        {dev.BufArg(d_u), dev.BufArg(d_rsd), Arg::I32(nx),
         Arg::F64(1.2)}));
    std::swap(d_u, d_rsd);
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<double>(d_u, nx * nx));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// MG: multigrid restriction + prolongation stencils.
// ===========================================================================
constexpr char kMgCl[] = R"(
__kernel void restrict_grid(__global double* fine, __global double* coarse,
                            int cn) {
  int i = get_global_id(0);
  if (i >= cn) return;
  int fi = i * 2;
  coarse[i] = 0.25 * fine[fi] + 0.5 * fine[fi + 1] + 0.25 * fine[fi + 2];
}
__kernel void prolong_grid(__global double* coarse, __global double* fine,
                           int cn) {
  int i = get_global_id(0);
  if (i >= cn) return;
  fine[i * 2] += coarse[i];
  fine[i * 2 + 1] += 0.5 * (coarse[i] + coarse[(i + 1) % cn]);
}
)";

Status MgDriver(DualDev& dev, double* checksum) {
  const int fn = 512, cn = 255;
  InputGen gen(2626);
  std::vector<double> fine(fn);
  for (auto& v : fine) v = gen.NextFloat(0, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_fine, dev.Upload(fine));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_coarse, dev.Alloc(cn * 8 + 16));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "restrict_grid", Dim3((cn + 63) / 64), Dim3(64),
      {dev.BufArg(d_fine), dev.BufArg(d_coarse), Arg::I32(cn)}));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "prolong_grid", Dim3((cn + 63) / 64), Dim3(64),
      {dev.BufArg(d_coarse), dev.BufArg(d_fine), Arg::I32(cn)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<double>(d_fine, fn));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// SP: scalar pentadiagonal-style line sweep.
// ===========================================================================
constexpr char kSpCl[] = R"(
__kernel void line_solve(__global double* lhs, __global double* rhs,
                         int nx, int lines) {
  int line = get_global_id(0);
  if (line >= lines) return;
  int base = line * nx;
  for (int i = 1; i < nx; i++) {
    double f = lhs[base + i] / (lhs[base + i - 1] + 1.0);
    rhs[base + i] -= f * rhs[base + i - 1];
  }
  for (int i = nx - 2; i >= 0; i--) {
    rhs[base + i] -= 0.3 * rhs[base + i + 1];
  }
}
)";

Status SpDriver(DualDev& dev, double* checksum) {
  const int nx = 32, lines = 64;
  InputGen gen(2727);
  std::vector<double> lhs(nx * lines), rhs(nx * lines);
  for (auto& v : lhs) v = gen.NextFloat(0.5f, 2.0f);
  for (auto& v : rhs) v = gen.NextFloat(-1, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_lhs, dev.Upload(lhs));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_rhs, dev.Upload(rhs));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "line_solve", Dim3(lines / 32), Dim3(32),
      {dev.BufArg(d_lhs), dev.BufArg(d_rhs), Arg::I32(nx),
       Arg::I32(lines)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto out,
                            dev.Download<double>(d_rhs, nx * lines));
  *checksum = Checksum(out);
  return OkStatus();
}

}  // namespace

std::vector<AppPtr> NpbApps() {
  std::vector<AppPtr> apps;
  // SNU NPB provides no CUDA versions (§6.1): CUDA source is empty, so
  // RunCuda is only reachable through the cl2cu wrapper path.
  apps.push_back(
      std::make_unique<DualApp>("CG", "npb", kCgCl, "", CgDriver));
  apps.push_back(
      std::make_unique<DualApp>("EP", "npb", kEpCl, "", EpDriver));
  apps.push_back(
      std::make_unique<DualApp>("FT", "npb", kFtCl, "", FtDriver));
  apps.push_back(
      std::make_unique<DualApp>("IS", "npb", kIsCl, "", IsDriver));
  apps.push_back(
      std::make_unique<DualApp>("LU", "npb", kLuCl, "", LuDriver));
  apps.push_back(
      std::make_unique<DualApp>("MG", "npb", kMgCl, "", MgDriver));
  apps.push_back(
      std::make_unique<DualApp>("SP", "npb", kSpCl, "", SpDriver));
  return apps;
}

}  // namespace bridgecl::apps
