#include "apps/dual.h"

#include "interp/module.h"

namespace bridgecl::apps {
namespace {

class ClDualDev final : public DualDev {
 public:
  explicit ClDualDev(mocl::OpenClApi& cl) : runner_(cl) {}

  Status Build(const std::string& source) { return runner_.Build(source); }

  StatusOr<H> Alloc(size_t bytes) override {
    BRIDGECL_ASSIGN_OR_RETURN(mocl::ClMem m, runner_.Alloc(bytes));
    return m.handle;
  }
  Status Write(H h, const void* src, size_t bytes) override {
    return runner_.api().EnqueueWriteBuffer(mocl::ClMem{h}, 0, bytes, src);
  }
  Status Read(H h, void* dst, size_t bytes) override {
    return runner_.api().EnqueueReadBuffer(mocl::ClMem{h}, 0, bytes, dst);
  }
  Status Launch(const std::string& kernel, simgpu::Dim3 grid,
                simgpu::Dim3 block,
                std::initializer_list<Arg> args) override {
    simgpu::Dim3 gws = simgpu::GridToNdrange(grid, block);
    return runner_.Launch(kernel, gws, block, args);
  }
  Status SetRegs(const std::string& kernel, int regs) override {
    return runner_.SetRegisters(kernel, regs);
  }
  Arg BufArg(H h) const override { return Arg::Buf(mocl::ClMem{h}); }

 private:
  ClRunner runner_;
};

class CudaDualDev final : public DualDev {
 public:
  explicit CudaDualDev(mcuda::CudaApi& cu) : runner_(cu) {}

  Status Build(const std::string& source) { return runner_.Build(source); }

  StatusOr<H> Alloc(size_t bytes) override {
    BRIDGECL_ASSIGN_OR_RETURN(void* p, runner_.Alloc(bytes));
    return reinterpret_cast<H>(p);
  }
  Status Write(H h, const void* src, size_t bytes) override {
    return runner_.api().Memcpy(reinterpret_cast<void*>(h), src, bytes,
                                mcuda::MemcpyKind::kHostToDevice);
  }
  Status Read(H h, void* dst, size_t bytes) override {
    return runner_.api().Memcpy(dst, reinterpret_cast<void*>(h), bytes,
                                mcuda::MemcpyKind::kDeviceToHost);
  }
  Status Launch(const std::string& kernel, simgpu::Dim3 grid,
                simgpu::Dim3 block,
                std::initializer_list<Arg> args) override {
    // CUDA convention: dynamic locals leave the parameter list and become
    // the third launch-configuration argument (§4.1).
    std::vector<Arg> real;
    size_t shared = 0;
    for (const Arg& a : args) {
      if (a.k == Arg::K::kLocal) {
        shared += (a.n + 15) & ~size_t{15};
      } else {
        real.push_back(a);
      }
    }
    std::vector<mcuda::LaunchArg> largs;
    for (const Arg& a : real) {
      switch (a.k) {
        case Arg::K::kCuPtr:
          largs.push_back(mcuda::LaunchArg::Ptr(a.ptr));
          break;
        case Arg::K::kI32:
          largs.push_back(mcuda::LaunchArg::Value<int32_t>(a.i));
          break;
        case Arg::K::kU32:
          largs.push_back(mcuda::LaunchArg::Value<uint32_t>(a.u));
          break;
        case Arg::K::kF32:
          largs.push_back(mcuda::LaunchArg::Value<float>(a.f));
          break;
        case Arg::K::kF64:
          largs.push_back(mcuda::LaunchArg::Value<double>(a.d));
          break;
        case Arg::K::kU64:
          largs.push_back(mcuda::LaunchArg::Value<uint64_t>(a.u64));
          break;
        default:
          return InvalidArgumentError("bad CUDA launch argument kind");
      }
    }
    return runner_.api().LaunchKernel(kernel, grid, block, shared, largs);
  }
  Status SetRegs(const std::string& kernel, int regs) override {
    return runner_.api().SetKernelRegisters(kernel, regs);
  }
  Arg BufArg(H h) const override {
    return Arg::Ptr(reinterpret_cast<void*>(h));
  }

 private:
  CudaRunner runner_;
};

}  // namespace

// Register overrides are installed into the process-wide table keyed by
// the *compiling* toolchain: a wrapper binding ends in the target model's
// compiler, which is exactly the paper's cfd occupancy mechanism (S6.3).
Status DualApp::RunCl(mocl::OpenClApi& cl, double* checksum) {
  if (cl_source_.empty())
    return UnimplementedError(name_ + " has no OpenCL version");
  for (const RegisterOverride& o : overrides_)
    interp::KernelRegisterTable::Instance().Set(o.kernel, o.opencl_regs,
                                                o.cuda_regs);
  ClDualDev dev(cl);
  BRIDGECL_RETURN_IF_ERROR(dev.Build(cl_source_));
  return driver_(dev, checksum);
}

Status DualApp::RunCuda(mcuda::CudaApi& cu, double* checksum) {
  if (cuda_source_.empty())
    return UnimplementedError(name_ + " has no CUDA version");
  for (const RegisterOverride& o : overrides_)
    interp::KernelRegisterTable::Instance().Set(o.kernel, o.opencl_regs,
                                                o.cuda_regs);
  CudaDualDev dev(cu);
  BRIDGECL_RETURN_IF_ERROR(dev.Build(cuda_source_));
  return driver_(dev, checksum);
}

}  // namespace bridgecl::apps
