// Rodinia 3.0-style applications (part 1): backprop, bfs, b+tree, cfd,
// gaussian, hotspot, lavaMD, lud. Each is a compact reimplementation of
// the original benchmark's computational pattern with both dialect
// versions — Rodinia ships both, which is what lets the paper compare
// original-vs-translated in both directions (Figs 7a / 8a).
#include <cmath>

#include "apps/dual.h"

namespace bridgecl::apps {
namespace {

using simgpu::Dim3;

// ===========================================================================
// backprop: one hidden-layer forward pass + weight adjustment.
// ===========================================================================
constexpr char kBackpropCl[] = R"(
__kernel void layerforward(__global float* input, __global float* weights,
                           __global float* hidden, int in_n, int hid_n) {
  int j = get_global_id(0);
  if (j >= hid_n) return;
  float sum = 0.0f;
  for (int i = 0; i < in_n; i++) {
    sum += input[i] * weights[i * hid_n + j];
  }
  hidden[j] = 1.0f / (1.0f + exp(-sum));
}
__kernel void adjust_weights(__global float* delta, __global float* input,
                             __global float* weights, int in_n, int hid_n,
                             float eta) {
  int j = get_global_id(0);
  int i = get_global_id(1);
  if (i < in_n && j < hid_n) {
    weights[i * hid_n + j] += eta * delta[j] * input[i];
  }
}
)";

constexpr char kBackpropCu[] = R"(
__global__ void layerforward(float* input, float* weights, float* hidden,
                             int in_n, int hid_n) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  if (j >= hid_n) return;
  float sum = 0.0f;
  for (int i = 0; i < in_n; i++) {
    sum += input[i] * weights[i * hid_n + j];
  }
  hidden[j] = 1.0f / (1.0f + expf(-sum));
}
__global__ void adjust_weights(float* delta, float* input, float* weights,
                               int in_n, int hid_n, float eta) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i < in_n && j < hid_n) {
    weights[i * hid_n + j] += eta * delta[j] * input[i];
  }
}
)";

Status BackpropDriver(DualDev& dev, double* checksum) {
  const int in_n = 64, hid_n = 64;
  InputGen gen(101);
  auto input = gen.Floats(in_n, -1, 1);
  auto weights = gen.Floats(in_n * hid_n, -0.5f, 0.5f);
  auto delta = gen.Floats(hid_n, -0.1f, 0.1f);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_in, dev.Upload(input));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_w, dev.Upload(weights));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_delta, dev.Upload(delta));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_hid, dev.Alloc(hid_n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "layerforward", Dim3(hid_n / 16), Dim3(16),
      {dev.BufArg(d_in), dev.BufArg(d_w), dev.BufArg(d_hid),
       Arg::I32(in_n), Arg::I32(hid_n)}));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "adjust_weights", Dim3(hid_n / 16, in_n / 16), Dim3(16, 16),
      {dev.BufArg(d_delta), dev.BufArg(d_in), dev.BufArg(d_w),
       Arg::I32(in_n), Arg::I32(hid_n), Arg::F32(0.3f)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto hidden, dev.Download<float>(d_hid, hid_n));
  BRIDGECL_ASSIGN_OR_RETURN(auto w2,
                            dev.Download<float>(d_w, in_n * hid_n));
  *checksum = Checksum(hidden) + Checksum(w2);
  return OkStatus();
}

// ===========================================================================
// bfs: level-synchronous breadth-first search over a CSR graph.
// ===========================================================================
constexpr char kBfsCl[] = R"(
__kernel void bfs_kernel(__global int* row_offsets, __global int* columns,
                         __global int* frontier, __global int* next,
                         __global int* cost, __global int* done, int n,
                         int level) {
  int tid = get_global_id(0);
  if (tid >= n) return;
  if (frontier[tid] == 0) return;
  frontier[tid] = 0;
  for (int e = row_offsets[tid]; e < row_offsets[tid + 1]; e++) {
    int nb = columns[e];
    if (cost[nb] < 0) {
      cost[nb] = level + 1;
      next[nb] = 1;
      *done = 0;
    }
  }
}
)";

constexpr char kBfsCu[] = R"(
__global__ void bfs_kernel(int* row_offsets, int* columns, int* frontier,
                           int* next, int* cost, int* done, int n,
                           int level) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid >= n) return;
  if (frontier[tid] == 0) return;
  frontier[tid] = 0;
  for (int e = row_offsets[tid]; e < row_offsets[tid + 1]; e++) {
    int nb = columns[e];
    if (cost[nb] < 0) {
      cost[nb] = level + 1;
      next[nb] = 1;
      *done = 0;
    }
  }
}
)";

Status BfsDriver(DualDev& dev, double* checksum) {
  const int n = 512, deg = 4;
  InputGen gen(202);
  std::vector<int> rows(n + 1), cols(n * deg);
  for (int i = 0; i <= n; ++i) rows[i] = i * deg;
  for (int i = 0; i < n * deg; ++i) cols[i] = gen.NextInt(0, n);
  std::vector<int> frontier(n, 0), cost(n, -1);
  frontier[0] = 1;
  cost[0] = 0;
  BRIDGECL_ASSIGN_OR_RETURN(auto d_rows, dev.Upload(rows));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_cols, dev.Upload(cols));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_front, dev.Upload(frontier));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_next,
                            dev.Upload(std::vector<int>(n, 0)));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_cost, dev.Upload(cost));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_done, dev.Alloc(4));
  for (int level = 0; level < 8; ++level) {
    int one = 1;
    BRIDGECL_RETURN_IF_ERROR(dev.Write(d_done, &one, 4));
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "bfs_kernel", Dim3(n / 64), Dim3(64),
        {dev.BufArg(d_rows), dev.BufArg(d_cols), dev.BufArg(d_front),
         dev.BufArg(d_next), dev.BufArg(d_cost), dev.BufArg(d_done),
         Arg::I32(n), Arg::I32(level)}));
    int done = 0;
    BRIDGECL_RETURN_IF_ERROR(dev.Read(d_done, &done, 4));
    std::swap(d_front, d_next);
    if (done) break;
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<int>(d_cost, n));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// b+tree: parallel range search over sorted key arrays (findRangeK).
// ===========================================================================
constexpr char kBtreeCl[] = R"(
__kernel void findRangeK(__global int* keys, __global int* queries,
                         __global int* results, int n_keys, int n_queries) {
  int q = get_global_id(0);
  if (q >= n_queries) return;
  int target = queries[q];
  int lo = 0;
  int hi = n_keys - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (keys[mid] < target) lo = mid + 1;
    else hi = mid;
  }
  results[q] = lo;
}
)";

constexpr char kBtreeCu[] = R"(
__global__ void findRangeK(int* keys, int* queries, int* results,
                           int n_keys, int n_queries) {
  int q = blockIdx.x * blockDim.x + threadIdx.x;
  if (q >= n_queries) return;
  int target = queries[q];
  int lo = 0;
  int hi = n_keys - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (keys[mid] < target) lo = mid + 1;
    else hi = mid;
  }
  results[q] = lo;
}
)";

Status BtreeDriver(DualDev& dev, double* checksum) {
  const int n_keys = 4096, n_queries = 256;
  InputGen gen(303);
  std::vector<int> keys(n_keys);
  int acc = 0;
  for (int i = 0; i < n_keys; ++i) {
    acc += gen.NextInt(1, 5);
    keys[i] = acc;
  }
  auto queries = gen.Ints(n_queries, 0, acc);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_keys, dev.Upload(keys));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_q, dev.Upload(queries));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_r, dev.Alloc(n_queries * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "findRangeK", Dim3(n_queries / 64), Dim3(64),
      {dev.BufArg(d_keys), dev.BufArg(d_q), dev.BufArg(d_r),
       Arg::I32(n_keys), Arg::I32(n_queries)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<int>(d_r, n_queries));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// cfd: Euler-solver flux computation. High register pressure: the paper's
// §6.3 occupancy case (nvcc: 85 regs → 0.375, OpenCL: 68 → 0.469).
// ===========================================================================
constexpr char kCfdCl[] = R"(
__kernel void compute_flux(__global float* density,
                           __global float* momentum_x,
                           __global float* momentum_y,
                           __global float* energy,
                           __global int* neighbors,
                           __global float* fluxes, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float d = density[i];
  float mx = momentum_x[i];
  float my = momentum_y[i];
  float e = energy[i];
  float vx = mx / d;
  float vy = my / d;
  float speed2 = vx * vx + vy * vy;
  float pressure = 0.4f * (e - 0.5f * d * speed2);
  float flux = 0.0f;
  for (int nb = 0; nb < 4; nb++) {
    int j = neighbors[i * 4 + nb];
    float dj = density[j];
    float mxj = momentum_x[j];
    float myj = momentum_y[j];
    float ej = energy[j];
    float vxj = mxj / dj;
    float vyj = myj / dj;
    float pj = 0.4f * (ej - 0.5f * dj * (vxj * vxj + vyj * vyj));
    flux += 0.5f * ((pressure + pj) + (d * vx - dj * vxj)
            + (d * vy - dj * vyj));
  }
  fluxes[i] = flux;
}
)";

constexpr char kCfdCu[] = R"(
__global__ void compute_flux(float* density, float* momentum_x,
                             float* momentum_y, float* energy,
                             int* neighbors, float* fluxes, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  float d = density[i];
  float mx = momentum_x[i];
  float my = momentum_y[i];
  float e = energy[i];
  float vx = mx / d;
  float vy = my / d;
  float speed2 = vx * vx + vy * vy;
  float pressure = 0.4f * (e - 0.5f * d * speed2);
  float flux = 0.0f;
  for (int nb = 0; nb < 4; nb++) {
    int j = neighbors[i * 4 + nb];
    float dj = density[j];
    float mxj = momentum_x[j];
    float myj = momentum_y[j];
    float ej = energy[j];
    float vxj = mxj / dj;
    float vyj = myj / dj;
    float pj = 0.4f * (ej - 0.5f * dj * (vxj * vxj + vyj * vyj));
    flux += 0.5f * ((pressure + pj) + (d * vx - dj * vxj)
            + (d * vy - dj * vyj));
  }
  fluxes[i] = flux;
}
)";

Status CfdDriver(DualDev& dev, double* checksum) {
  const int n = 1024;
  InputGen gen(404);
  auto density = gen.Floats(n, 0.5f, 2.0f);
  auto mx = gen.Floats(n, -1, 1);
  auto my = gen.Floats(n, -1, 1);
  auto energy = gen.Floats(n, 1, 4);
  std::vector<int> neighbors(n * 4);
  for (int i = 0; i < n * 4; ++i) neighbors[i] = gen.NextInt(0, n);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_d, dev.Upload(density));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_mx, dev.Upload(mx));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_my, dev.Upload(my));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_e, dev.Upload(energy));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_nb, dev.Upload(neighbors));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_f, dev.Alloc(n * 4));
  for (int iter = 0; iter < 3; ++iter) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "compute_flux", Dim3(n / 128), Dim3(128),
        {dev.BufArg(d_d), dev.BufArg(d_mx), dev.BufArg(d_my),
         dev.BufArg(d_e), dev.BufArg(d_nb), dev.BufArg(d_f), Arg::I32(n)}));
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<float>(d_f, n));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// gaussian: Gaussian elimination (Fan1/Fan2 kernels).
// ===========================================================================
constexpr char kGaussianCl[] = R"(
__kernel void Fan1(__global float* m, __global float* a, int size, int t) {
  int i = get_global_id(0);
  if (i >= size - 1 - t) return;
  m[size * (i + t + 1) + t] = a[size * (i + t + 1) + t] / a[size * t + t];
}
__kernel void Fan2(__global float* m, __global float* a, __global float* b,
                   int size, int t) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= size - 1 - t || y >= size - t) return;
  a[size * (x + 1 + t) + (y + t)] -=
      m[size * (x + 1 + t) + t] * a[size * t + (y + t)];
  if (y == 0) {
    b[x + 1 + t] -= m[size * (x + 1 + t) + t] * b[t];
  }
}
)";

constexpr char kGaussianCu[] = R"(
__global__ void Fan1(float* m, float* a, int size, int t) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= size - 1 - t) return;
  m[size * (i + t + 1) + t] = a[size * (i + t + 1) + t] / a[size * t + t];
}
__global__ void Fan2(float* m, float* a, float* b, int size, int t) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x >= size - 1 - t || y >= size - t) return;
  a[size * (x + 1 + t) + (y + t)] -=
      m[size * (x + 1 + t) + t] * a[size * t + (y + t)];
  if (y == 0) {
    b[x + 1 + t] -= m[size * (x + 1 + t) + t] * b[t];
  }
}
)";

Status GaussianDriver(DualDev& dev, double* checksum) {
  const int size = 32;
  InputGen gen(505);
  std::vector<float> a(size * size), b(size);
  for (int i = 0; i < size; ++i) {
    for (int j = 0; j < size; ++j)
      a[i * size + j] = gen.NextFloat(0.1f, 1.0f) + (i == j ? size : 0.0f);
    b[i] = gen.NextFloat(0, 10);
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto d_a, dev.Upload(a));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_b, dev.Upload(b));
  BRIDGECL_ASSIGN_OR_RETURN(
      auto d_m, dev.Upload(std::vector<float>(size * size, 0.0f)));
  for (int t = 0; t < size - 1; ++t) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "Fan1", Dim3(1), Dim3(size),
        {dev.BufArg(d_m), dev.BufArg(d_a), Arg::I32(size), Arg::I32(t)}));
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "Fan2", Dim3(2, 2), Dim3(16, 16),
        {dev.BufArg(d_m), dev.BufArg(d_a), dev.BufArg(d_b), Arg::I32(size),
         Arg::I32(t)}));
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out_a,
                            dev.Download<float>(d_a, size * size));
  BRIDGECL_ASSIGN_OR_RETURN(auto out_b, dev.Download<float>(d_b, size));
  *checksum = Checksum(out_a) * 1e-3 + Checksum(out_b);
  return OkStatus();
}

// ===========================================================================
// hotspot: thermal stencil with shared-memory tiles.
// ===========================================================================
constexpr char kHotspotCl[] = R"(
__kernel void hotspot(__global float* temp_in, __global float* power,
                      __global float* temp_out, int size, float cap,
                      float rx, float ry, float rz) {
  __local float tile[8][8];
  int tx = get_local_id(0);
  int ty = get_local_id(1);
  int x = get_global_id(0);
  int y = get_global_id(1);
  tile[ty][tx] = temp_in[y * size + x];
  barrier(CLK_LOCAL_MEM_FENCE);
  float center = tile[ty][tx];
  float left = tx > 0 ? tile[ty][tx - 1]
                      : (x > 0 ? temp_in[y * size + x - 1] : center);
  float right = tx < 7 ? tile[ty][tx + 1]
                       : (x < size - 1 ? temp_in[y * size + x + 1] : center);
  float up = ty > 0 ? tile[ty - 1][tx]
                    : (y > 0 ? temp_in[(y - 1) * size + x] : center);
  float down = ty < 7 ? tile[ty + 1][tx]
                      : (y < size - 1 ? temp_in[(y + 1) * size + x]
                                      : center);
  float delta = (cap) * (power[y * size + x] +
      (left + right - 2.0f * center) * rx +
      (up + down - 2.0f * center) * ry + (80.0f - center) * rz);
  temp_out[y * size + x] = center + delta;
}
)";

constexpr char kHotspotCu[] = R"(
__global__ void hotspot(float* temp_in, float* power, float* temp_out,
                        int size, float cap, float rx, float ry, float rz) {
  __shared__ float tile[8][8];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  tile[ty][tx] = temp_in[y * size + x];
  __syncthreads();
  float center = tile[ty][tx];
  float left = tx > 0 ? tile[ty][tx - 1]
                      : (x > 0 ? temp_in[y * size + x - 1] : center);
  float right = tx < 7 ? tile[ty][tx + 1]
                       : (x < size - 1 ? temp_in[y * size + x + 1] : center);
  float up = ty > 0 ? tile[ty - 1][tx]
                    : (y > 0 ? temp_in[(y - 1) * size + x] : center);
  float down = ty < 7 ? tile[ty + 1][tx]
                      : (y < size - 1 ? temp_in[(y + 1) * size + x]
                                      : center);
  float delta = (cap) * (power[y * size + x] +
      (left + right - 2.0f * center) * rx +
      (up + down - 2.0f * center) * ry + (80.0f - center) * rz);
  temp_out[y * size + x] = center + delta;
}
)";

Status HotspotDriver(DualDev& dev, double* checksum) {
  const int size = 32;
  InputGen gen(606);
  auto temp = gen.Floats(size * size, 60, 90);
  auto power = gen.Floats(size * size, 0, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_t0, dev.Upload(temp));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_p, dev.Upload(power));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_t1, dev.Alloc(size * size * 4));
  for (int iter = 0; iter < 4; ++iter) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "hotspot", Dim3(size / 8, size / 8), Dim3(8, 8),
        {dev.BufArg(d_t0), dev.BufArg(d_p), dev.BufArg(d_t1),
         Arg::I32(size), Arg::F32(0.5f), Arg::F32(0.1f), Arg::F32(0.1f),
         Arg::F32(0.05f)}));
    std::swap(d_t0, d_t1);
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out,
                            dev.Download<float>(d_t0, size * size));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// lavaMD: per-box particle interactions with float4 positions.
// ===========================================================================
constexpr char kLavaMdCl[] = R"(
__kernel void lavamd(__global float4* pos, __global float4* force,
                     int per_box, int boxes) {
  int box = get_group_id(0);
  int p = get_local_id(0);
  if (box >= boxes || p >= per_box) return;
  int base = box * per_box;
  float4 me = pos[base + p];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  for (int q = 0; q < per_box; q++) {
    float4 other = pos[base + q];
    float dx = me.x - other.x;
    float dy = me.y - other.y;
    float dz = me.z - other.z;
    float r2 = dx * dx + dy * dy + dz * dz + 0.01f;
    float inv = 1.0f / (r2 * sqrt(r2));
    fx += dx * inv * other.w;
    fy += dy * inv * other.w;
    fz += dz * inv * other.w;
  }
  force[base + p] = (float4)(fx, fy, fz, 0.0f);
}
)";

constexpr char kLavaMdCu[] = R"(
__global__ void lavamd(float4* pos, float4* force, int per_box, int boxes) {
  int box = blockIdx.x;
  int p = threadIdx.x;
  if (box >= boxes || p >= per_box) return;
  int base = box * per_box;
  float4 me = pos[base + p];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  for (int q = 0; q < per_box; q++) {
    float4 other = pos[base + q];
    float dx = me.x - other.x;
    float dy = me.y - other.y;
    float dz = me.z - other.z;
    float r2 = dx * dx + dy * dy + dz * dz + 0.01f;
    float inv = 1.0f / (r2 * sqrtf(r2));
    fx += dx * inv * other.w;
    fy += dy * inv * other.w;
    fz += dz * inv * other.w;
  }
  force[base + p] = make_float4(fx, fy, fz, 0.0f);
}
)";

Status LavaMdDriver(DualDev& dev, double* checksum) {
  const int per_box = 16, boxes = 16;
  InputGen gen(707);
  auto pos = gen.Floats(per_box * boxes * 4, -2, 2);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_pos, dev.Upload(pos));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_force,
                            dev.Alloc(per_box * boxes * 16));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "lavamd", Dim3(boxes), Dim3(per_box),
      {dev.BufArg(d_pos), dev.BufArg(d_force), Arg::I32(per_box),
       Arg::I32(boxes)}));
  BRIDGECL_ASSIGN_OR_RETURN(
      auto out, dev.Download<float>(d_force, per_box * boxes * 4));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// lud: LU decomposition, per-step row elimination.
// ===========================================================================
constexpr char kLudCl[] = R"(
__kernel void lud_step(__global float* a, int size, int k) {
  int j = get_global_id(0);
  int i = get_global_id(1);
  if (i <= k || i >= size || j < k || j >= size) return;
  if (j == k) {
    a[i * size + k] = a[i * size + k] / a[k * size + k];
  }
}
__kernel void lud_update(__global float* a, int size, int k) {
  int j = get_global_id(0);
  int i = get_global_id(1);
  if (i <= k || i >= size || j <= k || j >= size) return;
  a[i * size + j] -= a[i * size + k] * a[k * size + j];
}
)";

constexpr char kLudCu[] = R"(
__global__ void lud_step(float* a, int size, int k) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i <= k || i >= size || j < k || j >= size) return;
  if (j == k) {
    a[i * size + k] = a[i * size + k] / a[k * size + k];
  }
}
__global__ void lud_update(float* a, int size, int k) {
  int j = blockIdx.x * blockDim.x + threadIdx.x;
  int i = blockIdx.y * blockDim.y + threadIdx.y;
  if (i <= k || i >= size || j <= k || j >= size) return;
  a[i * size + j] -= a[i * size + k] * a[k * size + j];
}
)";

Status LudDriver(DualDev& dev, double* checksum) {
  const int size = 32;
  InputGen gen(808);
  std::vector<float> a(size * size);
  for (int i = 0; i < size; ++i)
    for (int j = 0; j < size; ++j)
      a[i * size + j] = gen.NextFloat(0.1f, 1.0f) + (i == j ? size : 0.0f);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_a, dev.Upload(a));
  for (int k = 0; k < size - 1; ++k) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "lud_step", Dim3(size / 16, size / 16), Dim3(16, 16),
        {dev.BufArg(d_a), Arg::I32(size), Arg::I32(k)}));
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "lud_update", Dim3(size / 16, size / 16), Dim3(16, 16),
        {dev.BufArg(d_a), Arg::I32(size), Arg::I32(k)}));
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out,
                            dev.Download<float>(d_a, size * size));
  *checksum = Checksum(out);
  return OkStatus();
}

}  // namespace

// Defined in rodinia2.cc.
void AppendRodiniaPart2(std::vector<AppPtr>* apps);

std::vector<AppPtr> RodiniaApps() {
  std::vector<AppPtr> apps;
  apps.push_back(std::make_unique<DualApp>("backprop", "rodinia",
                                           kBackpropCl, kBackpropCu,
                                           BackpropDriver));
  apps.push_back(std::make_unique<DualApp>("bfs", "rodinia", kBfsCl, kBfsCu,
                                           BfsDriver));
  apps.push_back(std::make_unique<DualApp>("b+tree", "rodinia", kBtreeCl,
                                           kBtreeCu, BtreeDriver));
  apps.push_back(std::make_unique<DualApp>(
      "cfd", "rodinia", kCfdCl, kCfdCu, CfdDriver,
      std::vector<RegisterOverride>{{"compute_flux", 68, 85}}));
  apps.push_back(std::make_unique<DualApp>("gaussian", "rodinia",
                                           kGaussianCl, kGaussianCu,
                                           GaussianDriver));
  apps.push_back(std::make_unique<DualApp>("hotspot", "rodinia", kHotspotCl,
                                           kHotspotCu, HotspotDriver));
  apps.push_back(std::make_unique<DualApp>("lavaMD", "rodinia", kLavaMdCl,
                                           kLavaMdCu, LavaMdDriver));
  apps.push_back(std::make_unique<DualApp>("lud", "rodinia", kLudCl, kLudCu,
                                           LudDriver));
  AppendRodiniaPart2(&apps);
  return apps;
}

}  // namespace bridgecl::apps
