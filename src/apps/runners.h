// Thin checked helpers that keep the apps' host drivers compact while
// still exercising the real API call sequences (every helper maps 1:1
// onto API entry points — no bundling that would hide wrapper overhead).
#pragma once

#include <cstring>
#include <initializer_list>
#include <vector>

#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/dim3.h"
#include "support/status.h"

namespace bridgecl::apps {

/// One kernel argument for the compact Launch helpers.
struct Arg {
  enum class K {
    kClBuf,    // OpenCL memory object
    kCuPtr,    // CUDA device pointer
    kLocal,    // OpenCL dynamic __local allocation
    kI32,
    kU32,
    kF32,
    kF64,
    kU64,      // also OpenCL samplers
  };
  K k = K::kI32;
  mocl::ClMem mem{};
  void* ptr = nullptr;
  size_t n = 0;
  int32_t i = 0;
  uint32_t u = 0;
  float f = 0;
  double d = 0;
  uint64_t u64 = 0;

  static Arg Buf(mocl::ClMem m) {
    Arg a;
    a.k = K::kClBuf;
    a.mem = m;
    return a;
  }
  static Arg Ptr(void* p) {
    Arg a;
    a.k = K::kCuPtr;
    a.ptr = p;
    return a;
  }
  static Arg Local(size_t bytes) {
    Arg a;
    a.k = K::kLocal;
    a.n = bytes;
    return a;
  }
  static Arg I32(int32_t v) {
    Arg a;
    a.k = K::kI32;
    a.i = v;
    return a;
  }
  static Arg U32(uint32_t v) {
    Arg a;
    a.k = K::kU32;
    a.u = v;
    return a;
  }
  static Arg F32(float v) {
    Arg a;
    a.k = K::kF32;
    a.f = v;
    return a;
  }
  static Arg F64(double v) {
    Arg a;
    a.k = K::kF64;
    a.d = v;
    return a;
  }
  static Arg U64(uint64_t v) {
    Arg a;
    a.k = K::kU64;
    a.u64 = v;
    return a;
  }
};

/// OpenCL host-driver helper.
class ClRunner {
 public:
  explicit ClRunner(mocl::OpenClApi& cl) : cl_(cl) {}

  Status Build(const std::string& source);

  StatusOr<mocl::ClMem> Alloc(size_t bytes,
                              mocl::MemFlags flags = mocl::MemFlags::kReadWrite);
  template <typename T>
  StatusOr<mocl::ClMem> Upload(const std::vector<T>& data,
                               mocl::MemFlags flags = mocl::MemFlags::kReadWrite) {
    BRIDGECL_ASSIGN_OR_RETURN(mocl::ClMem m,
                              Alloc(data.size() * sizeof(T), flags));
    BRIDGECL_RETURN_IF_ERROR(
        cl_.EnqueueWriteBuffer(m, 0, data.size() * sizeof(T), data.data()));
    return m;
  }
  template <typename T>
  StatusOr<std::vector<T>> Download(mocl::ClMem m, size_t count) {
    std::vector<T> out(count);
    BRIDGECL_RETURN_IF_ERROR(
        cl_.EnqueueReadBuffer(m, 0, count * sizeof(T), out.data()));
    return out;
  }

  Status Launch(const std::string& kernel, simgpu::Dim3 gws,
                simgpu::Dim3 lws, std::initializer_list<Arg> args);

  Status SetRegisters(const std::string& kernel, int regs);

  mocl::OpenClApi& api() { return cl_; }

 private:
  mocl::OpenClApi& cl_;
  mocl::ClProgram program_{};
  bool built_ = false;
};

/// CUDA host-driver helper.
class CudaRunner {
 public:
  explicit CudaRunner(mcuda::CudaApi& cu) : cu_(cu) {}

  Status Build(const std::string& source) {
    return cu_.RegisterModule(source);
  }

  StatusOr<void*> Alloc(size_t bytes) { return cu_.Malloc(bytes); }
  template <typename T>
  StatusOr<void*> Upload(const std::vector<T>& data) {
    BRIDGECL_ASSIGN_OR_RETURN(void* p, cu_.Malloc(data.size() * sizeof(T)));
    BRIDGECL_RETURN_IF_ERROR(cu_.Memcpy(p, data.data(),
                                        data.size() * sizeof(T),
                                        mcuda::MemcpyKind::kHostToDevice));
    return p;
  }
  template <typename T>
  StatusOr<std::vector<T>> Download(void* p, size_t count) {
    std::vector<T> out(count);
    BRIDGECL_RETURN_IF_ERROR(cu_.Memcpy(out.data(), p, count * sizeof(T),
                                        mcuda::MemcpyKind::kDeviceToHost));
    return out;
  }

  Status Launch(const std::string& kernel, simgpu::Dim3 grid,
                simgpu::Dim3 block, size_t shared_bytes,
                std::initializer_list<Arg> args);

  mcuda::CudaApi& api() { return cu_; }

 private:
  mcuda::CudaApi& cu_;
};

/// Order-stable checksum helpers used by the apps.
double Checksum(const std::vector<float>& v);
double Checksum(const std::vector<double>& v);
double Checksum(const std::vector<int>& v);
double Checksum(const std::vector<unsigned>& v);

/// Deterministic pseudo-random input generator (xorshift-based), shared by
/// every app so that both dialect variants see identical inputs.
class InputGen {
 public:
  explicit InputGen(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint32_t NextU32() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return static_cast<uint32_t>(state_ >> 32);
  }
  float NextFloat(float lo = 0.0f, float hi = 1.0f) {
    return lo + (hi - lo) * (NextU32() / 4294967296.0f);
  }
  int NextInt(int lo, int hi) {  // [lo, hi)
    return lo + static_cast<int>(NextU32() % (hi - lo));
  }
  std::vector<float> Floats(size_t n, float lo = 0.0f, float hi = 1.0f) {
    std::vector<float> out(n);
    for (auto& v : out) v = NextFloat(lo, hi);
    return out;
  }
  std::vector<int> Ints(size_t n, int lo, int hi) {
    std::vector<int> out(n);
    for (auto& v : out) v = NextInt(lo, hi);
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace bridgecl::apps
