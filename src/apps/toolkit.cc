// NVIDIA CUDA Toolkit 4.2-style samples: the translatable subset the paper
// measures in Figs 7(c)/8(b), including simpleTexture (the §5 texture
// translation) and deviceQuery (the §6.3 wrapper-overhead outlier).
#include <cmath>

#include "apps/dual.h"

namespace bridgecl::apps {
namespace {

using simgpu::Dim3;

// ===========================================================================
// vectorAdd
// ===========================================================================
constexpr char kVecAddCl[] = R"(
__kernel void vectorAdd(__global float* a, __global float* b,
                        __global float* c, int n) {
  int i = get_global_id(0);
  if (i < n) c[i] = a[i] + b[i];
}
)";
constexpr char kVecAddCu[] = R"(
__global__ void vectorAdd(float* a, float* b, float* c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) c[i] = a[i] + b[i];
}
)";

Status VecAddDriver(DualDev& dev, double* checksum) {
  const int n = 2048;
  InputGen gen(3131);
  auto a = gen.Floats(n), b = gen.Floats(n);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_a, dev.Upload(a));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_b, dev.Upload(b));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_c, dev.Alloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "vectorAdd", Dim3(n / 128), Dim3(128),
      {dev.BufArg(d_a), dev.BufArg(d_b), dev.BufArg(d_c), Arg::I32(n)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto c, dev.Download<float>(d_c, n));
  *checksum = Checksum(c);
  return OkStatus();
}

// ===========================================================================
// matrixMul: tiled shared-memory matrix multiply.
// ===========================================================================
constexpr char kMatMulCl[] = R"(
__kernel void matrixMul(__global float* a, __global float* b,
                        __global float* c, int n) {
  __local float as[8][8];
  __local float bs[8][8];
  int tx = get_local_id(0);
  int ty = get_local_id(1);
  int col = get_global_id(0);
  int row = get_global_id(1);
  float sum = 0.0f;
  for (int t = 0; t < n / 8; t++) {
    as[ty][tx] = a[row * n + t * 8 + tx];
    bs[ty][tx] = b[(t * 8 + ty) * n + col];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int k = 0; k < 8; k++) {
      sum += as[ty][k] * bs[k][tx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  c[row * n + col] = sum;
}
)";
constexpr char kMatMulCu[] = R"(
__global__ void matrixMul(float* a, float* b, float* c, int n) {
  __shared__ float as[8][8];
  __shared__ float bs[8][8];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  float sum = 0.0f;
  for (int t = 0; t < n / 8; t++) {
    as[ty][tx] = a[row * n + t * 8 + tx];
    bs[ty][tx] = b[(t * 8 + ty) * n + col];
    __syncthreads();
    for (int k = 0; k < 8; k++) {
      sum += as[ty][k] * bs[k][tx];
    }
    __syncthreads();
  }
  c[row * n + col] = sum;
}
)";

Status MatMulDriver(DualDev& dev, double* checksum) {
  const int n = 32;
  InputGen gen(3232);
  auto a = gen.Floats(n * n, -1, 1), b = gen.Floats(n * n, -1, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_a, dev.Upload(a));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_b, dev.Upload(b));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_c, dev.Alloc(n * n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "matrixMul", Dim3(n / 8, n / 8), Dim3(8, 8),
      {dev.BufArg(d_a), dev.BufArg(d_b), dev.BufArg(d_c), Arg::I32(n)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto c, dev.Download<float>(d_c, n * n));
  *checksum = Checksum(c);
  return OkStatus();
}

// ===========================================================================
// scalarProd: per-block dot products with a shared-memory reduction.
// ===========================================================================
constexpr char kScalarProdCl[] = R"(
__kernel void scalarProd(__global float* a, __global float* b,
                         __global float* partial, int n) {
  __local float acc[64];
  int l = get_local_id(0);
  int g = get_global_id(0);
  acc[l] = g < n ? a[g] * b[g] : 0.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 32; s > 0; s >>= 1) {
    if (l < s) acc[l] += acc[l + s];
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (l == 0) partial[get_group_id(0)] = acc[0];
}
)";
constexpr char kScalarProdCu[] = R"(
__global__ void scalarProd(float* a, float* b, float* partial, int n) {
  __shared__ float acc[64];
  int l = threadIdx.x;
  int g = blockIdx.x * blockDim.x + threadIdx.x;
  acc[l] = g < n ? a[g] * b[g] : 0.0f;
  __syncthreads();
  for (int s = 32; s > 0; s >>= 1) {
    if (l < s) acc[l] += acc[l + s];
    __syncthreads();
  }
  if (l == 0) partial[blockIdx.x] = acc[0];
}
)";

Status ScalarProdDriver(DualDev& dev, double* checksum) {
  const int n = 1024, block = 64;
  InputGen gen(3333);
  auto a = gen.Floats(n, -1, 1), b = gen.Floats(n, -1, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_a, dev.Upload(a));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_b, dev.Upload(b));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_p, dev.Alloc((n / block) * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "scalarProd", Dim3(n / block), Dim3(block),
      {dev.BufArg(d_a), dev.BufArg(d_b), dev.BufArg(d_p), Arg::I32(n)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto p, dev.Download<float>(d_p, n / block));
  *checksum = Checksum(p);
  return OkStatus();
}

// ===========================================================================
// convolutionSeparable: row + column passes with a constant-memory filter.
// Exercises dynamic constant memory (§4.2) in the OpenCL version.
// ===========================================================================
constexpr char kConvCl[] = R"(
__kernel void convRows(__global float* src, __global float* dst,
                       __constant float* filter, int w, int h, int r) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= w || y >= h) return;
  float sum = 0.0f;
  for (int k = -r; k <= r; k++) {
    int xx = x + k;
    if (xx < 0) xx = 0;
    if (xx >= w) xx = w - 1;
    sum += src[y * w + xx] * filter[k + r];
  }
  dst[y * w + x] = sum;
}
__kernel void convCols(__global float* src, __global float* dst,
                       __constant float* filter, int w, int h, int r) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= w || y >= h) return;
  float sum = 0.0f;
  for (int k = -r; k <= r; k++) {
    int yy = y + k;
    if (yy < 0) yy = 0;
    if (yy >= h) yy = h - 1;
    sum += src[yy * w + x] * filter[k + r];
  }
  dst[y * w + x] = sum;
}
)";
constexpr char kConvCu[] = R"(
__constant__ float filter[9];
__global__ void convRows(float* src, float* dst, int w, int h, int r) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x >= w || y >= h) return;
  float sum = 0.0f;
  for (int k = -r; k <= r; k++) {
    int xx = x + k;
    if (xx < 0) xx = 0;
    if (xx >= w) xx = w - 1;
    sum += src[y * w + xx] * filter[k + r];
  }
  dst[y * w + x] = sum;
}
__global__ void convCols(float* src, float* dst, int w, int h, int r) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x >= w || y >= h) return;
  float sum = 0.0f;
  for (int k = -r; k <= r; k++) {
    int yy = y + k;
    if (yy < 0) yy = 0;
    if (yy >= h) yy = h - 1;
    sum += src[yy * w + x] * filter[k + r];
  }
  dst[y * w + x] = sum;
}
)";

/// convolutionSeparable has genuinely different host flows: OpenCL passes
/// the filter as a dynamic __constant buffer; CUDA initializes a static
/// __constant__ symbol with cudaMemcpyToSymbol (§4.2).
class ConvSeparableApp final : public App {
 public:
  std::string name() const override { return "convolutionSeparable"; }
  std::string suite() const override { return "toolkit"; }
  std::string OpenClSource() const override { return kConvCl; }
  std::string CudaSource() const override { return kConvCu; }

  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const int w = 32, h = 32, r = 4;
    InputGen gen(3434);
    auto img = gen.Floats(w * h, 0, 1);
    std::vector<float> filter(2 * r + 1);
    float fsum = 0;
    for (int i = 0; i <= 2 * r; ++i) {
      filter[i] = std::exp(-0.2f * (i - r) * (i - r));
      fsum += filter[i];
    }
    for (auto& f : filter) f /= fsum;
    ClRunner run(cl);
    BRIDGECL_RETURN_IF_ERROR(run.Build(kConvCl));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_src, run.Upload(img));
    BRIDGECL_ASSIGN_OR_RETURN(
        auto d_filter, run.Upload(filter, mocl::MemFlags::kReadOnly));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_tmp, run.Alloc(w * h * 4));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_dst, run.Alloc(w * h * 4));
    BRIDGECL_RETURN_IF_ERROR(run.Launch(
        "convRows", Dim3(w, h), Dim3(16, 16),
        {Arg::Buf(d_src), Arg::Buf(d_tmp), Arg::Buf(d_filter), Arg::I32(w),
         Arg::I32(h), Arg::I32(r)}));
    BRIDGECL_RETURN_IF_ERROR(run.Launch(
        "convCols", Dim3(w, h), Dim3(16, 16),
        {Arg::Buf(d_tmp), Arg::Buf(d_dst), Arg::Buf(d_filter), Arg::I32(w),
         Arg::I32(h), Arg::I32(r)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, run.Download<float>(d_dst, w * h));
    *checksum = Checksum(out);
    return OkStatus();
  }

  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    const int w = 32, h = 32, r = 4;
    InputGen gen(3434);
    auto img = gen.Floats(w * h, 0, 1);
    std::vector<float> filter(2 * r + 1);
    float fsum = 0;
    for (int i = 0; i <= 2 * r; ++i) {
      filter[i] = std::exp(-0.2f * (i - r) * (i - r));
      fsum += filter[i];
    }
    for (auto& f : filter) f /= fsum;
    CudaRunner run(cu);
    BRIDGECL_RETURN_IF_ERROR(run.Build(kConvCu));
    BRIDGECL_RETURN_IF_ERROR(cu.MemcpyToSymbol(
        "filter", filter.data(), filter.size() * sizeof(float)));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_src, run.Upload(img));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_tmp, run.Alloc(w * h * 4));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_dst, run.Alloc(w * h * 4));
    BRIDGECL_RETURN_IF_ERROR(run.Launch(
        "convRows", Dim3(w / 16, h / 16), Dim3(16, 16), 0,
        {Arg::Ptr(d_src), Arg::Ptr(d_tmp), Arg::I32(w), Arg::I32(h),
         Arg::I32(r)}));
    BRIDGECL_RETURN_IF_ERROR(run.Launch(
        "convCols", Dim3(w / 16, h / 16), Dim3(16, 16), 0,
        {Arg::Ptr(d_tmp), Arg::Ptr(d_dst), Arg::I32(w), Arg::I32(h),
         Arg::I32(r)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, run.Download<float>(d_dst, w * h));
    *checksum = Checksum(out);
    return OkStatus();
  }
};

// ===========================================================================
// BlackScholes: option pricing, math heavy.
// ===========================================================================
constexpr char kBlackScholesCl[] = R"(
__kernel void BlackScholes(__global float* call, __global float* put,
                           __global float* S, __global float* X,
                           __global float* T, float R, float V, int n) {
  int i = get_global_id(0);
  if (i >= n) return;
  float sqrtT = sqrt(T[i]);
  float d1 = (log(S[i] / X[i]) + (R + 0.5f * V * V) * T[i]) / (V * sqrtT);
  float d2 = d1 - V * sqrtT;
  float k1 = 1.0f / (1.0f + 0.2316419f * fabs(d1));
  float cnd1 = 1.0f - 0.3989423f * exp(-0.5f * d1 * d1) * k1 *
               (0.3193815f + k1 * (-0.3565638f + k1 * 1.7814779f));
  if (d1 < 0.0f) cnd1 = 1.0f - cnd1;
  float k2 = 1.0f / (1.0f + 0.2316419f * fabs(d2));
  float cnd2 = 1.0f - 0.3989423f * exp(-0.5f * d2 * d2) * k2 *
               (0.3193815f + k2 * (-0.3565638f + k2 * 1.7814779f));
  if (d2 < 0.0f) cnd2 = 1.0f - cnd2;
  float expRT = exp(-R * T[i]);
  call[i] = S[i] * cnd1 - X[i] * expRT * cnd2;
  put[i] = X[i] * expRT * (1.0f - cnd2) - S[i] * (1.0f - cnd1);
}
)";
constexpr char kBlackScholesCu[] = R"(
__global__ void BlackScholes(float* call, float* put, float* S, float* X,
                             float* T, float R, float V, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= n) return;
  float sqrtT = sqrtf(T[i]);
  float d1 = (logf(S[i] / X[i]) + (R + 0.5f * V * V) * T[i]) / (V * sqrtT);
  float d2 = d1 - V * sqrtT;
  float k1 = 1.0f / (1.0f + 0.2316419f * fabsf(d1));
  float cnd1 = 1.0f - 0.3989423f * expf(-0.5f * d1 * d1) * k1 *
               (0.3193815f + k1 * (-0.3565638f + k1 * 1.7814779f));
  if (d1 < 0.0f) cnd1 = 1.0f - cnd1;
  float k2 = 1.0f / (1.0f + 0.2316419f * fabsf(d2));
  float cnd2 = 1.0f - 0.3989423f * expf(-0.5f * d2 * d2) * k2 *
               (0.3193815f + k2 * (-0.3565638f + k2 * 1.7814779f));
  if (d2 < 0.0f) cnd2 = 1.0f - cnd2;
  float expRT = expf(-R * T[i]);
  call[i] = S[i] * cnd1 - X[i] * expRT * cnd2;
  put[i] = X[i] * expRT * (1.0f - cnd2) - S[i] * (1.0f - cnd1);
}
)";

Status BlackScholesDriver(DualDev& dev, double* checksum) {
  const int n = 512;
  InputGen gen(3535);
  auto S = gen.Floats(n, 10, 100);
  auto X = gen.Floats(n, 10, 100);
  auto T = gen.Floats(n, 0.2f, 2.0f);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_S, dev.Upload(S));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_X, dev.Upload(X));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_T, dev.Upload(T));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_call, dev.Alloc(n * 4));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_put, dev.Alloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "BlackScholes", Dim3(n / 128), Dim3(128),
      {dev.BufArg(d_call), dev.BufArg(d_put), dev.BufArg(d_S),
       dev.BufArg(d_X), dev.BufArg(d_T), Arg::F32(0.02f), Arg::F32(0.3f),
       Arg::I32(n)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto call, dev.Download<float>(d_call, n));
  BRIDGECL_ASSIGN_OR_RETURN(auto put, dev.Download<float>(d_put, n));
  *checksum = Checksum(call) + Checksum(put);
  return OkStatus();
}

// ===========================================================================
// histogram64: per-block shared histograms merged by atomics.
// ===========================================================================
constexpr char kHistogramCl[] = R"(
__kernel void histogram64(__global uchar* data, __global int* hist, int n) {
  __local int local_hist[64];
  int l = get_local_id(0);
  local_hist[l] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  int g = get_global_id(0);
  int stride = (int)get_global_size(0);
  for (int i = g; i < n; i += stride) {
    atomic_add(&local_hist[data[i] / 4], 1);
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  atomic_add(&hist[l], local_hist[l]);
}
)";
constexpr char kHistogramCu[] = R"(
__global__ void histogram64(unsigned char* data, int* hist, int n) {
  __shared__ int local_hist[64];
  int l = threadIdx.x;
  local_hist[l] = 0;
  __syncthreads();
  int g = blockIdx.x * blockDim.x + threadIdx.x;
  int stride = gridDim.x * blockDim.x;
  for (int i = g; i < n; i += stride) {
    atomicAdd(&local_hist[data[i] / 4], 1);
  }
  __syncthreads();
  atomicAdd(&hist[l], local_hist[l]);
}
)";

Status HistogramDriver(DualDev& dev, double* checksum) {
  const int n = 4096;
  InputGen gen(3636);
  std::vector<unsigned char> data(n);
  for (auto& v : data) v = static_cast<unsigned char>(gen.NextU32() % 256);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_data, dev.Upload(data));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_hist,
                            dev.Upload(std::vector<int>(64, 0)));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "histogram64", Dim3(4), Dim3(64),
      {dev.BufArg(d_data), dev.BufArg(d_hist), Arg::I32(n)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto hist, dev.Download<int>(d_hist, 64));
  *checksum = Checksum(hist);
  return OkStatus();
}

// ===========================================================================
// dwtHaar1D: one level of the Haar wavelet transform.
// ===========================================================================
constexpr char kDwtCl[] = R"(
__kernel void dwtHaar1D(__global float* in, __global float* approx,
                        __global float* detail, int half_n) {
  int i = get_global_id(0);
  if (i >= half_n) return;
  float a = in[2 * i];
  float b = in[2 * i + 1];
  approx[i] = (a + b) * 0.70710678f;
  detail[i] = (a - b) * 0.70710678f;
}
)";
constexpr char kDwtCu[] = R"(
__global__ void dwtHaar1D(float* in, float* approx, float* detail,
                          int half_n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i >= half_n) return;
  float a = in[2 * i];
  float b = in[2 * i + 1];
  approx[i] = (a + b) * 0.70710678f;
  detail[i] = (a - b) * 0.70710678f;
}
)";

Status DwtDriver(DualDev& dev, double* checksum) {
  const int n = 2048;
  InputGen gen(3737);
  auto in = gen.Floats(n, -1, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d_in, dev.Upload(in));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_a, dev.Alloc(n / 2 * 4));
  BRIDGECL_ASSIGN_OR_RETURN(auto d_d, dev.Alloc(n / 2 * 4));
  BRIDGECL_RETURN_IF_ERROR(dev.Launch(
      "dwtHaar1D", Dim3(n / 2 / 64), Dim3(64),
      {dev.BufArg(d_in), dev.BufArg(d_a), dev.BufArg(d_d),
       Arg::I32(n / 2)}));
  BRIDGECL_ASSIGN_OR_RETURN(auto a, dev.Download<float>(d_a, n / 2));
  BRIDGECL_ASSIGN_OR_RETURN(auto d, dev.Download<float>(d_d, n / 2));
  *checksum = Checksum(a) + Checksum(d);
  return OkStatus();
}

// ===========================================================================
// fastWalshTransform: butterfly passes over shared memory.
// ===========================================================================
constexpr char kFwtCl[] = R"(
__kernel void fwtBatch(__global float* data, int stride) {
  int i = get_global_id(0);
  int lo = i & (stride - 1);
  int base = ((i - lo) << 1) + lo;
  float a = data[base];
  float b = data[base + stride];
  data[base] = a + b;
  data[base + stride] = a - b;
}
)";
constexpr char kFwtCu[] = R"(
__global__ void fwtBatch(float* data, int stride) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int lo = i & (stride - 1);
  int base = ((i - lo) << 1) + lo;
  float a = data[base];
  float b = data[base + stride];
  data[base] = a + b;
  data[base + stride] = a - b;
}
)";

Status FwtDriver(DualDev& dev, double* checksum) {
  const int n = 1024;
  InputGen gen(3838);
  auto data = gen.Floats(n, -1, 1);
  BRIDGECL_ASSIGN_OR_RETURN(auto d, dev.Upload(data));
  for (int stride = 1; stride < n; stride <<= 1) {
    BRIDGECL_RETURN_IF_ERROR(dev.Launch(
        "fwtBatch", Dim3(n / 2 / 64), Dim3(64),
        {dev.BufArg(d), Arg::I32(stride)}));
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto out, dev.Download<float>(d, n));
  *checksum = Checksum(out);
  return OkStatus();
}

// ===========================================================================
// simpleTexture: image rotation through the texture path (§5). The two
// host programs differ structurally: CUDA binds a texture reference to a
// cudaArray; OpenCL creates an image + sampler and passes them as args.
// ===========================================================================
constexpr char kSimpleTexCl[] = R"(
__kernel void transformKernel(__read_only image2d_t tex, sampler_t s,
                              __global float* out, int w, int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x >= w || y >= h) return;
  float4 t = read_imagef(tex, s, (int2)(w - 1 - x, h - 1 - y));
  out[y * w + x] = t.x;
}
)";
constexpr char kSimpleTexCu[] = R"(
texture<float, 2, cudaReadModeElementType> tex;
__global__ void transformKernel(float* out, int w, int h) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x >= w || y >= h) return;
  out[y * w + x] = tex2D(tex, (float)(w - 1 - x), (float)(h - 1 - y));
}
)";

class SimpleTextureApp final : public App {
 public:
  std::string name() const override { return "simpleTexture"; }
  std::string suite() const override { return "toolkit"; }
  std::string OpenClSource() const override { return kSimpleTexCl; }
  std::string CudaSource() const override { return kSimpleTexCu; }

  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const int w = 16, h = 16;
    InputGen gen(3939);
    auto img = gen.Floats(w * h, 0, 1);
    ClRunner run(cl);
    BRIDGECL_RETURN_IF_ERROR(run.Build(kSimpleTexCl));
    mocl::ClImageFormat fmt;
    fmt.elem = lang::ScalarKind::kFloat;
    fmt.channels = 1;
    BRIDGECL_ASSIGN_OR_RETURN(
        auto d_img,
        cl.CreateImage2D(mocl::MemFlags::kReadOnly, fmt, w, h, img.data()));
    BRIDGECL_ASSIGN_OR_RETURN(auto sampler, cl.CreateSampler({}));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_out, run.Alloc(w * h * 4));
    BRIDGECL_RETURN_IF_ERROR(run.Launch(
        "transformKernel", Dim3(w, h), Dim3(8, 8),
        {Arg::Buf(d_img), Arg::U64(sampler), Arg::Buf(d_out), Arg::I32(w),
         Arg::I32(h)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, run.Download<float>(d_out, w * h));
    *checksum = Checksum(out);
    return OkStatus();
  }

  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    const int w = 16, h = 16;
    InputGen gen(3939);
    auto img = gen.Floats(w * h, 0, 1);
    CudaRunner run(cu);
    BRIDGECL_RETURN_IF_ERROR(run.Build(kSimpleTexCu));
    mcuda::ChannelDesc desc;
    desc.elem = lang::ScalarKind::kFloat;
    desc.channels = 1;
    BRIDGECL_ASSIGN_OR_RETURN(void* arr, cu.MallocArray(desc, w, h));
    BRIDGECL_RETURN_IF_ERROR(cu.MemcpyToArray(arr, img.data(), w * h * 4));
    BRIDGECL_RETURN_IF_ERROR(cu.BindTextureToArray("tex", arr));
    BRIDGECL_ASSIGN_OR_RETURN(auto d_out, run.Alloc(w * h * 4));
    BRIDGECL_RETURN_IF_ERROR(run.Launch(
        "transformKernel", Dim3(w / 8, h / 8), Dim3(8, 8), 0,
        {Arg::Ptr(d_out), Arg::I32(w), Arg::I32(h)}));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, run.Download<float>(d_out, w * h));
    *checksum = Checksum(out);
    return OkStatus();
  }
};

// ===========================================================================
// deviceQuery: no kernels — repeated device-attribute queries. Under the
// cu2cl wrapper each cudaGetDeviceProperties call fans out into many
// clGetDeviceInfo calls, the §6.3 outlier in Fig 8(b).
// ===========================================================================
class DeviceQueryApp final : public App {
 public:
  std::string name() const override { return "deviceQuery"; }
  std::string suite() const override { return "toolkit"; }
  // Needs a trivial module so the wrapper path has something to translate.
  std::string CudaSource() const override {
    return "__global__ void noop(int* p) { if (threadIdx.x == 0) p[0] = 1; }";
  }
  std::string OpenClSource() const override {
    return "__kernel void noop(__global int* p) {"
           "  if (get_local_id(0) == 0) p[0] = 1;"
           "}";
  }

  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(CudaSource()));
    double props_sum = 0;
    for (int rep = 0; rep < 32; ++rep) {
      BRIDGECL_ASSIGN_OR_RETURN(mcuda::CudaDeviceProps p,
                                cu.GetDeviceProperties());
      props_sum += p.multi_processor_count + p.warp_size;
    }
    *checksum = props_sum;
    return OkStatus();
  }

  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    double sum = 0;
    for (int rep = 0; rep < 32; ++rep) {
      BRIDGECL_ASSIGN_OR_RETURN(
          uint64_t cus,
          cl.QueryDeviceInfoUint(mocl::ClDeviceAttr::kMaxComputeUnits));
      sum += static_cast<double>(cus) + 32;
    }
    *checksum = sum;
    return OkStatus();
  }
};

// ===========================================================================
// asyncAPI: kernel timing through the event APIs (cudaEvent_t pairs /
// cl_event profiling). The computed checksum folds in the event-measured
// window scaled off, so outputs stay device-independent while the event
// path is exercised under every binding.
// ===========================================================================
constexpr char kAsyncCl[] = R"(
__kernel void increment(__global int* data, int n, int v) {
  int i = get_global_id(0);
  if (i < n) data[i] += v;
}
)";
constexpr char kAsyncCu[] = R"(
__global__ void increment(int* data, int n, int v) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) data[i] += v;
}
)";

class AsyncApiApp final : public App {
 public:
  std::string name() const override { return "asyncAPI"; }
  std::string suite() const override { return "toolkit"; }
  std::string OpenClSource() const override { return kAsyncCl; }
  std::string CudaSource() const override { return kAsyncCu; }

  Status RunCl(mocl::OpenClApi& cl, double* checksum) override {
    const int n = 512;
    InputGen gen(4040);
    auto data = gen.Ints(n, 0, 100);
    BRIDGECL_ASSIGN_OR_RETURN(auto prog,
                              cl.CreateProgramWithSource(kAsyncCl));
    BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel,
                              cl.CreateKernel(prog, "increment"));
    BRIDGECL_ASSIGN_OR_RETURN(
        auto d, cl.CreateBuffer(mocl::MemFlags::kReadWrite, n * 4,
                                data.data()));
    int nn = n, v = 7;
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(d), &d));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(int), &nn));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 2, sizeof(int), &v));
    // Timed launch via cl_event profiling.
    size_t gws = n, lws = 64;
    BRIDGECL_ASSIGN_OR_RETURN(
        auto ev, cl.EnqueueNDRangeKernelWithEvent(kernel, 1, &gws, &lws));
    double queued = 0, end = 0;
    BRIDGECL_RETURN_IF_ERROR(cl.GetEventProfiling(ev, &queued, &end));
    if (end <= queued)
      return InternalError("event profiling window is empty");
    std::vector<int> out(n);
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(d, 0, n * 4, out.data()));
    *checksum = Checksum(out);
    return OkStatus();
  }

  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override {
    const int n = 512;
    InputGen gen(4040);
    auto data = gen.Ints(n, 0, 100);
    CudaRunner r(cu);
    BRIDGECL_RETURN_IF_ERROR(r.Build(kAsyncCu));
    BRIDGECL_ASSIGN_OR_RETURN(auto d, r.Upload(data));
    BRIDGECL_ASSIGN_OR_RETURN(void* start, cu.EventCreate());
    BRIDGECL_ASSIGN_OR_RETURN(void* stop, cu.EventCreate());
    BRIDGECL_RETURN_IF_ERROR(cu.EventRecord(start));
    BRIDGECL_RETURN_IF_ERROR(r.Launch(
        "increment", Dim3(n / 64), Dim3(64), 0,
        {Arg::Ptr(d), Arg::I32(n), Arg::I32(7)}));
    BRIDGECL_RETURN_IF_ERROR(cu.EventRecord(stop));
    BRIDGECL_ASSIGN_OR_RETURN(double us, cu.EventElapsedUs(start, stop));
    if (us <= 0) return InternalError("event window is empty");
    BRIDGECL_RETURN_IF_ERROR(cu.EventDestroy(start));
    BRIDGECL_RETURN_IF_ERROR(cu.EventDestroy(stop));
    BRIDGECL_ASSIGN_OR_RETURN(auto out, r.Download<int>(d, n));
    *checksum = Checksum(out);
    return OkStatus();
  }
};

}  // namespace

std::vector<AppPtr> ToolkitApps() {
  std::vector<AppPtr> apps;
  apps.push_back(std::make_unique<DualApp>("vectorAdd", "toolkit",
                                           kVecAddCl, kVecAddCu,
                                           VecAddDriver));
  apps.push_back(std::make_unique<DualApp>("matrixMul", "toolkit",
                                           kMatMulCl, kMatMulCu,
                                           MatMulDriver));
  apps.push_back(std::make_unique<DualApp>("scalarProd", "toolkit",
                                           kScalarProdCl, kScalarProdCu,
                                           ScalarProdDriver));
  apps.push_back(std::make_unique<ConvSeparableApp>());
  apps.push_back(std::make_unique<DualApp>("BlackScholes", "toolkit",
                                           kBlackScholesCl, kBlackScholesCu,
                                           BlackScholesDriver));
  apps.push_back(std::make_unique<DualApp>("histogram64", "toolkit",
                                           kHistogramCl, kHistogramCu,
                                           HistogramDriver));
  apps.push_back(std::make_unique<DualApp>("dwtHaar1D", "toolkit", kDwtCl,
                                           kDwtCu, DwtDriver));
  apps.push_back(std::make_unique<DualApp>("fastWalshTransform", "toolkit",
                                           kFwtCl, kFwtCu, FwtDriver));
  apps.push_back(std::make_unique<SimpleTextureApp>());
  apps.push_back(std::make_unique<AsyncApiApp>());
  apps.push_back(std::make_unique<DeviceQueryApp>());
  return apps;
}

AppPtr FindApp(const std::string& name) {
  for (auto maker : {RodiniaApps, NpbApps, ToolkitApps,
                     RodiniaUntranslatableApps}) {
    for (auto& app : maker()) {
      if (app->name() == name) return std::move(app);
    }
  }
  return nullptr;
}

}  // namespace bridgecl::apps
