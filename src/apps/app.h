// Benchmark application framework. Each App models one program from the
// paper's evaluation suites (Rodinia 3.0, SNU NPB 1.0.3, NVIDIA CUDA
// Toolkit 4.2 samples): it carries device source in one or both dialects
// and host drivers written against the abstract APIs — so the same driver
// runs under a native binding or under the paper's wrapper binding, which
// is exactly how Figures 7 and 8 are measured.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "support/status.h"

namespace bridgecl::apps {

/// Per-kernel register counts as "allocated by the native compilers".
/// Models §6.3's cfd result: the CUDA and OpenCL toolchains allocate
/// different register counts for the same kernel, changing occupancy.
struct RegisterOverride {
  std::string kernel;
  int opencl_regs = 0;  // 0 = keep the front-end estimate
  int cuda_regs = 0;
};

class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;
  virtual std::string suite() const = 0;  // "rodinia" | "npb" | "toolkit"

  /// Device sources. Empty string = this dialect version does not exist
  /// (SNU NPB has no CUDA versions; some stand-ins are CUDA-only).
  virtual std::string OpenClSource() const { return ""; }
  virtual std::string CudaSource() const { return ""; }
  /// Whole-application CUDA source (device + host) for the
  /// translatability classifier; defaults to the device code. Apps whose
  /// blocking feature lives in host code (nn/mummergpu's cudaMemGetInfo)
  /// override this.
  virtual std::string FullCudaSource() const { return CudaSource(); }
  bool has_opencl() const { return !OpenClSource().empty(); }
  bool has_cuda() const { return !CudaSource().empty(); }

  /// OpenCL host program (untouched under either binding, §3.2). Returns
  /// a checksum of the outputs for cross-binding equivalence checks.
  virtual Status RunCl(mocl::OpenClApi& cl, double* checksum) {
    (void)cl;
    (void)checksum;
    return UnimplementedError(name() + " has no OpenCL host program");
  }
  /// CUDA host program.
  virtual Status RunCuda(mcuda::CudaApi& cu, double* checksum) {
    (void)cu;
    (void)checksum;
    return UnimplementedError(name() + " has no CUDA host program");
  }

  virtual std::vector<RegisterOverride> RegisterOverrides() const {
    return {};
  }
};

using AppPtr = std::unique_ptr<App>;

/// The suites (translatable applications).
std::vector<AppPtr> RodiniaApps();
std::vector<AppPtr> NpbApps();
std::vector<AppPtr> ToolkitApps();
/// Rodinia applications whose CUDA versions are untranslatable (Fig 8a):
/// heartwall, nn, mummergpu, dwt2d, kmeans, leukocyte, hybridsort-tex.
std::vector<AppPtr> RodiniaUntranslatableApps();

/// Find an app by name across all suites; null if unknown.
AppPtr FindApp(const std::string& name);

}  // namespace bridgecl::apps
