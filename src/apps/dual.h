// DualDev: a minimal host-programming facade implemented over both API
// models, for apps whose host logic is structurally identical in the two
// programming models (most of Rodinia/Toolkit — the paper's §3.2
// "one-to-one correspondence"). The facade maps onto the *real* call
// sequences of each model:
//   * Launch(grid, block, args): OpenCL converts to NDRange + one
//     clSetKernelArg per argument (locals via null-value args); CUDA drops
//     local args from the parameter list and passes their total as the
//     <<<...>>> dynamic shared size.
// Apps with asymmetric host flows (e.g. hybridsort's extra transfers)
// bypass the facade and implement RunCl/RunCuda directly.
#pragma once

#include <functional>

#include "apps/app.h"
#include "apps/runners.h"
#include "simgpu/dim3.h"

namespace bridgecl::apps {

class DualDev {
 public:
  using H = uint64_t;  // opaque buffer handle

  virtual ~DualDev() = default;

  virtual StatusOr<H> Alloc(size_t bytes) = 0;
  virtual Status Write(H h, const void* src, size_t bytes) = 0;
  virtual Status Read(H h, void* dst, size_t bytes) = 0;
  /// `grid`/`block` in CUDA terms; args listed in the OpenCL kernel's
  /// parameter order (dynamic locals included, at their positions).
  virtual Status Launch(const std::string& kernel, simgpu::Dim3 grid,
                        simgpu::Dim3 block,
                        std::initializer_list<Arg> args) = 0;
  virtual Status SetRegs(const std::string& kernel, int regs) = 0;
  /// Argument wrapper for a buffer handle (dialect-appropriate).
  virtual Arg BufArg(H h) const = 0;

  template <typename T>
  StatusOr<H> Upload(const std::vector<T>& v) {
    BRIDGECL_ASSIGN_OR_RETURN(H h, Alloc(v.size() * sizeof(T)));
    BRIDGECL_RETURN_IF_ERROR(Write(h, v.data(), v.size() * sizeof(T)));
    return h;
  }
  template <typename T>
  StatusOr<std::vector<T>> Download(H h, size_t count) {
    std::vector<T> out(count);
    BRIDGECL_RETURN_IF_ERROR(Read(h, out.data(), count * sizeof(T)));
    return out;
  }
};

/// A dual-dialect app defined by two device sources, one symmetric driver,
/// and optional per-dialect register overrides.
class DualApp : public App {
 public:
  using Driver = std::function<Status(DualDev& dev, double* checksum)>;

  DualApp(std::string name, std::string suite, std::string cl_source,
          std::string cuda_source, Driver driver,
          std::vector<RegisterOverride> overrides = {})
      : name_(std::move(name)),
        suite_(std::move(suite)),
        cl_source_(std::move(cl_source)),
        cuda_source_(std::move(cuda_source)),
        driver_(std::move(driver)),
        overrides_(std::move(overrides)) {}

  std::string name() const override { return name_; }
  std::string suite() const override { return suite_; }
  std::string OpenClSource() const override { return cl_source_; }
  std::string CudaSource() const override { return cuda_source_; }
  std::vector<RegisterOverride> RegisterOverrides() const override {
    return overrides_;
  }

  Status RunCl(mocl::OpenClApi& cl, double* checksum) override;
  Status RunCuda(mcuda::CudaApi& cu, double* checksum) override;

 private:
  std::string name_, suite_, cl_source_, cuda_source_;
  Driver driver_;
  std::vector<RegisterOverride> overrides_;
};

}  // namespace bridgecl::apps
